"""Tests for the micro-batching serving front-end.

Contract: every served response is bit-identical to a direct single-image
``predict`` on the same model, requests actually get fused into batches,
padding never leaks into real responses, and failures propagate to the
callers that submitted the affected requests.
"""

import threading

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.serve import BatchingServer

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_model():
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def served_model():
    model = build_model()
    # Initialise the LSQ quantizers once so every subsequent path (eager
    # reference and compiled serving) sees identical frozen scales.
    model.predict(np.random.default_rng(0).normal(size=(1, 16, 16, 3)), engine="eager")
    return model


def make_images(count, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(16, 16, 3)) for _ in range(count)]


class TestBatchingServer:
    @pytest.mark.parametrize("engine", ["compiled", "eager"])
    def test_responses_match_direct_predict(self, served_model, engine):
        images = make_images(10)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        with BatchingServer(served_model, max_batch=4, max_wait_ms=5.0,
                            engine=engine) as server:
            results = server.predict_many(images)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)

    def test_requests_are_fused_into_batches(self, served_model):
        images = make_images(16)
        with BatchingServer(served_model, max_batch=8, max_wait_ms=20.0,
                            engine="compiled") as server:
            server.predict_many(images)
            stats = server.stats()
        assert stats.requests == 16
        assert stats.batches < 16  # fusion actually happened
        assert stats.max_batch_size > 1
        assert stats.mean_batch_size > 1.0

    def test_padding_never_leaks_into_responses(self, served_model):
        # 3 requests against max_batch=8 pad the bucket to 4; the padded
        # row is the repeated last image and must be dropped.
        images = make_images(3, seed=5)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        with BatchingServer(served_model, max_batch=8, max_wait_ms=20.0,
                            engine="compiled") as server:
            results = server.predict_many(images)
            stats = server.stats()
        assert stats.padded_rows >= 1
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)

    def test_mixed_shapes_are_grouped_not_padded(self, served_model):
        small = make_images(2, seed=7)
        # 32x32 divides by the patch size too, so both shapes are valid.
        rng = np.random.default_rng(8)
        large = [rng.normal(size=(32, 32, 3)) for _ in range(2)]
        reference = [served_model.predict(im[None], engine="eager")[0]
                     for im in small + large]
        with BatchingServer(served_model, max_batch=8, max_wait_ms=20.0,
                            engine="compiled") as server:
            results = server.predict_many(small + large)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)

    def test_concurrent_clients(self, served_model):
        images = make_images(24, seed=9)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in images]
        results = [None] * len(images)
        with BatchingServer(served_model, max_batch=8, max_wait_ms=5.0,
                            engine="compiled") as server:

            def client(offset):
                for index in range(offset, len(images), 3):
                    results[index] = server.predict(images[index])

            threads = [threading.Thread(target=client, args=(o,)) for o in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)

    def test_bad_request_propagates_exception(self, served_model):
        with BatchingServer(served_model, max_batch=4, max_wait_ms=0.0,
                            engine="compiled") as server:
            future = server.submit(np.zeros((7, 7, 3)))  # not patch-divisible
            with pytest.raises(ValueError):
                future.result(timeout=10)
            # The server survives a poisoned batch and keeps answering.
            image = make_images(1, seed=10)[0]
            np.testing.assert_array_equal(
                server.predict(image),
                served_model.predict(image[None], engine="eager")[0],
            )

    def test_one_failing_shape_group_does_not_poison_the_batch(self, served_model):
        # An invalid image (7x7 is not patch-divisible) and valid images
        # land in the same batch window; they form separate shape groups,
        # so only the invalid group's callers see the error.
        valid = make_images(3, seed=11)
        reference = [served_model.predict(im[None], engine="eager")[0] for im in valid]
        with BatchingServer(served_model, max_batch=8, max_wait_ms=50.0,
                            engine="compiled") as server:
            bad_future = server.submit(np.zeros((7, 7, 3)))
            good_futures = [server.submit(image) for image in valid]
            with pytest.raises(ValueError):
                bad_future.result(timeout=10)
            for future, want in zip(good_futures, reference):
                np.testing.assert_array_equal(future.result(timeout=10), want)
            stats = server.stats()
        assert stats.failed == 1
        assert stats.completed == len(valid)

    def test_health_report_shape(self, served_model):
        with BatchingServer(served_model, max_batch=4, max_wait_ms=5.0,
                            engine="compiled", max_queue=64) as server:
            server.predict_many(make_images(6, seed=12))
            health = server.health()
        assert health["status"] == "ok"
        assert health["engine"] == "compiled"
        assert health["queue_limit"] == 64
        assert health["worker_alive"] is True
        assert health["worker_error"] is None
        assert health["counters"]["completed"] == 6
        assert health["counters"]["shed"] == 0
        assert health["latency_ms"]["count"] == 6
        assert health["latency_ms"]["p50_ms"] <= health["latency_ms"]["p99_ms"]
        for bucket, summary in health["bucket_latency_ms"].items():
            int(bucket)  # buckets keyed by padded batch size, JSON-friendly
            assert summary["count"] > 0
        import json

        json.dumps(health)  # endpoint-shaped: must serialise as-is

    def test_close_fails_stranded_requests_loudly(self, served_model):
        # White-box: violate close()'s ordering contract on purpose by
        # sneaking a request behind the stop sentinel; the drain must fail
        # the future with ServerClosedError and raise the bug loudly.
        from concurrent.futures import Future

        from repro.serve import ServerClosedError
        from repro.serve.engine import _Request

        server = BatchingServer(served_model, engine="eager")
        server.close()
        stranded = _Request(np.zeros((16, 16, 3)), Future(), None)
        server._queue.put(stranded)
        with pytest.raises(AssertionError, match="ordering contract"):
            server._assert_drained()
        with pytest.raises(ServerClosedError):
            stranded.future.result(timeout=0)

    def test_invalid_deadline_rejected(self, served_model):
        with BatchingServer(served_model, engine="eager") as server:
            with pytest.raises(ValueError):
                server.submit(np.zeros((16, 16, 3)), deadline_ms=0.0)
            with pytest.raises(ValueError):
                server.submit(np.zeros((16, 16, 3)), deadline_ms=-5.0)

    def test_submit_after_close_raises(self, served_model):
        server = BatchingServer(served_model, engine="compiled")
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(np.zeros((16, 16, 3)))
        server.close()  # idempotent

    def test_engine_resolves_through_config(self, served_model):
        with engine_config.use(infer_engine="compiled"):
            server = BatchingServer(served_model)
        try:
            assert server.engine == "compiled"
            assert server._compiled is not None
        finally:
            server.close()

    def test_invalid_knobs_rejected(self, served_model):
        with pytest.raises(ValueError):
            BatchingServer(served_model, max_batch=0)
        with pytest.raises(ValueError):
            BatchingServer(served_model, max_wait_ms=-1.0)
