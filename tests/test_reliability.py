"""Unit tests for the reliability primitives: retry policies and faults.

Contract: backoff schedules are deterministic (hash-jittered, never
``random``), exception classification separates transient from fatal,
fault plans fire on exact per-site call counts, round-trip through JSON
(the env propagation path for process-pool workers), and file corruption
is applied deterministically.
"""

import os

import numpy as np
import pytest

from repro.core import engine_config
from repro.reliability import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    call_with_retry,
    corrupt_file,
    fault_point,
    inject,
    run_with_retry,
)
from repro.reliability import faults as faults_module


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        first = policy.backoff(1, site="sweep.build:gelu")
        assert first == policy.backoff(1, site="sweep.build:gelu")  # replayable
        assert 0.1 <= first < 0.1 * 1.5
        # Different sites / attempts / seeds de-correlate.
        assert first != policy.backoff(1, site="sweep.build:div")
        assert first != policy.backoff(2, site="sweep.build:gelu")
        assert first != RetryPolicy(base_delay=0.1, jitter=0.5, seed=8).backoff(
            1, site="sweep.build:gelu"
        )

    def test_classification(self):
        policy = RetryPolicy(retryable=(OSError,), fatal=(FileNotFoundError,))
        assert policy.is_retryable(OSError("transient"))
        assert not policy.is_retryable(FileNotFoundError("fatal wins over retryable"))
        assert not policy.is_retryable(ValueError("unlisted is fatal"))
        assert not policy.is_retryable(KeyboardInterrupt())

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed=-0.1)

    def test_max_elapsed_cuts_the_attempt_budget_short(self):
        # Fake clock: time only advances when the retry loop sleeps, so
        # the elapsed-budget arithmetic is exact and the test takes 0s.
        now = [0.0]
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, jitter=0.0,
            max_elapsed=2.5,
        )
        outcome = run_with_retry(
            lambda: (_ for _ in ()).throw(OSError("always")),
            policy, site="budget", sleep=sleep, clock=lambda: now[0],
        )
        # Attempt 1 fails at t=0, sleeps 1s; attempt 2 fails at t=1,
        # sleeps 1s; attempt 3 fails at t=2 — the next retry would start
        # at t=3 > 2.5, so the budget stops it ahead of max_attempts.
        assert not outcome.ok
        assert outcome.attempts == 3
        assert slept == [1.0, 1.0]
        assert isinstance(outcome.error, OSError)

    def test_zero_max_elapsed_means_no_retries(self):
        calls = []

        def failing():
            calls.append(1)
            raise OSError("transient")

        policy = RetryPolicy(
            max_attempts=5, base_delay=0.5, jitter=0.0, max_elapsed=0.0
        )
        outcome = run_with_retry(
            policy=policy, fn=failing, site="budget",
            sleep=lambda _: None, clock=lambda: 0.0,
        )
        assert not outcome.ok
        assert outcome.attempts == 1
        assert len(calls) == 1

    def test_max_elapsed_unset_leaves_attempts_in_charge(self):
        now = [0.0]

        def sleep(seconds):
            now[0] += seconds

        policy = RetryPolicy(max_attempts=4, base_delay=10.0, jitter=0.0)
        outcome = run_with_retry(
            lambda: (_ for _ in ()).throw(OSError("always")),
            policy, site="budget", sleep=sleep, clock=lambda: now[0],
        )
        assert outcome.attempts == 4  # all attempts spent despite 30s "elapsed"

    def test_resolve_reads_engine_config(self):
        with engine_config.use(retry_attempts=5, retry_base_delay=0.25):
            policy = RetryPolicy.resolve()
        assert policy.max_attempts == 5
        assert policy.base_delay == 0.25
        explicit = RetryPolicy(max_attempts=2)
        assert RetryPolicy.resolve(explicit) is explicit


class TestRunWithRetry:
    def test_transient_failure_recovers(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        outcome = run_with_retry(
            flaky, RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            site="t", sleep=slept.append,
        )
        assert outcome.ok and outcome.value == "ok"
        assert outcome.attempts == 3 and outcome.retries == 2
        assert slept == pytest.approx([0.01, 0.02])

    def test_attempts_exhausted_returns_error(self):
        outcome = run_with_retry(
            lambda: (_ for _ in ()).throw(RuntimeError("poison")),
            RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=lambda _: None,
        )
        assert not outcome.ok
        assert isinstance(outcome.error, RuntimeError)
        assert outcome.attempts == 3

    def test_fatal_error_is_not_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise ValueError("deterministic")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, fatal=(ValueError,))
        outcome = run_with_retry(fatal, policy, sleep=lambda _: None)
        assert outcome.attempts == 1
        assert len(calls) == 1

    def test_call_with_retry_raises_final_error(self):
        with pytest.raises(RuntimeError, match="poison"):
            call_with_retry(
                lambda: (_ for _ in ()).throw(RuntimeError("poison")),
                RetryPolicy(max_attempts=2, base_delay=0.0),
                sleep=lambda _: None,
            )


class TestFaultPlan:
    def test_fail_on_nth_call_is_deterministic(self):
        plan = FaultPlan(specs=(FaultSpec(site="site.a", fail_calls=(2,)),))
        with inject(plan):
            fault_point("site.a")  # call 1: fine
            with pytest.raises(InjectedFault):
                fault_point("site.a")  # call 2: fails
            fault_point("site.a")  # call 3: fine again

    def test_sites_are_isolated_and_fnmatched(self):
        plan = FaultPlan(specs=(FaultSpec(site="sweep.build:gelu:*", fail_always=True),))
        with inject(plan):
            fault_point("sweep.build:div:gqa-rm")  # no match, no fault
            with pytest.raises(InjectedFault):
                fault_point("sweep.build:gelu:gqa-rm")

    def test_exception_class_selection(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", fail_always=True, exception="value"),))
        with inject(plan):
            with pytest.raises(ValueError):
                fault_point("s")
        with pytest.raises(ValueError):
            FaultSpec(site="s", exception="no-such-class")

    def test_no_plan_is_a_noop(self):
        fault_point("anything")  # must never raise without an installed plan
        assert faults_module.active_plan() is None

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="a", fail_calls=(1, 3), exception="os", message="boom"),
                FaultSpec(site="b", delay_always=True, delay_seconds=0.5),
            ),
            seed=9,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_propagation(self):
        plan = FaultPlan(specs=(FaultSpec(site="envsite", fail_calls=(1,)),))
        with inject(plan, propagate=True):
            assert os.environ[faults_module.FAULT_PLAN_ENV] == plan.to_json()
        assert faults_module.FAULT_PLAN_ENV not in os.environ
        # A fresh process would parse the env var lazily; simulate it.
        os.environ[faults_module.FAULT_PLAN_ENV] = plan.to_json()
        try:
            assert faults_module.active_plan() == plan
            with pytest.raises(InjectedFault):
                fault_point("envsite")
        finally:
            os.environ.pop(faults_module.FAULT_PLAN_ENV)

    def test_corrupt_file_truncates_deterministically(self, tmp_path):
        path = tmp_path / "artifact.bin"
        payload = bytes(range(64))
        plan = FaultPlan(specs=(FaultSpec(site="store", corrupt_calls=(1,)),), seed=3)
        with inject(plan):
            path.write_bytes(payload)
            assert corrupt_file("store", path)
            first = path.read_bytes()
            assert len(first) == 32 and first != payload[:32]
            # Second call at the site: spec only corrupts call 1.
            path.write_bytes(payload)
            assert not corrupt_file("store", path)
            assert path.read_bytes() == payload
        # Replayed plan corrupts identically.
        with inject(plan):
            path.write_bytes(payload)
            corrupt_file("store", path)
            assert path.read_bytes() == first


class TestEngineConfigKnobs:
    def test_env_layer_parses_reliability_knobs(self, monkeypatch):
        monkeypatch.setenv(engine_config.RETRY_ATTEMPTS_ENV, "4")
        monkeypatch.setenv(engine_config.RETRY_BASE_DELAY_ENV, "0.5")
        monkeypatch.setenv(engine_config.SERVE_QUEUE_LIMIT_ENV, "64")
        monkeypatch.setenv(engine_config.SERVE_DEADLINE_MS_ENV, "250")
        config = engine_config.current()
        assert config.retry_attempts == 4
        assert config.retry_base_delay == 0.5
        assert config.serve_queue_limit == 64
        assert config.serve_deadline_ms == 250.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            engine_config.EngineConfig(retry_attempts=0)
        with pytest.raises(ValueError):
            engine_config.EngineConfig(serve_queue_limit=-1)
        with pytest.raises(ValueError):
            engine_config.EngineConfig(serve_deadline_ms=-0.5)
        with pytest.raises(ValueError):
            engine_config.resolve_retry_attempts(0)

    def test_resolvers_follow_precedence(self, monkeypatch):
        monkeypatch.setenv(engine_config.SERVE_QUEUE_LIMIT_ENV, "8")
        assert engine_config.resolve_serve_queue_limit() == 8
        with engine_config.use(serve_queue_limit=16):
            assert engine_config.resolve_serve_queue_limit() == 16
            assert engine_config.resolve_serve_queue_limit(32) == 32
        assert engine_config.resolve_serve_deadline_ms(125.0) == 125.0
