"""Equivalence and regression tests for the batched genetic engine.

Pins the three contracts DESIGN.md documents:

* batched fitness scores are bit-identical to scalar scores (to well below
  the issue's 1e-12 bound — exactly equal);
* a seeded ``GeneticSearch.run`` returns identical results under the
  batched and per-individual (legacy) engines, for both mutation operators;
* the dedup + score cache only removes redundant fitness work — it never
  changes the trajectory — and the crossover window can start at the last
  breakpoint index.
"""

import numpy as np
import pytest

from repro.core.evaluation import QuantizedPWLEvaluator
from repro.core.fitness import FitnessFunction, GridMSEFitness, QuantizedMSEFitness
from repro.core.genetic import GASettings, GeneticSearch
from repro.core.mutation import NormalMutation, RoundingMutation
from repro.core.pwl import fit_pwl_batch
from repro.core.search import GQALUT
from repro.functions.registry import get_function


def make_population(fn, size=20, num_breakpoints=7, seed=0):
    rng = np.random.default_rng(seed)
    pop = np.sort(rng.uniform(*fn.search_range, size=(size, num_breakpoints)), axis=1)
    pop[0] = pop[1]  # duplicate row, as tournament selection produces
    return pop


class TestBatchFitnessEquivalence:
    @pytest.mark.parametrize("frac_bits", [None, 5])
    @pytest.mark.parametrize("method", ["interpolate", "lstsq"])
    def test_grid_mse_scores_match_scalar(self, frac_bits, method):
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.01, fit_method=method, frac_bits=frac_bits)
        pop = make_population(fn)
        batch = fitness.batch_call(pop)
        scalar = np.array([fitness(row) for row in pop])
        np.testing.assert_array_equal(batch, scalar)
        np.testing.assert_allclose(batch, scalar, atol=1e-12, rtol=0)

    @pytest.mark.parametrize("operator", ["gelu", "exp"])
    def test_quantized_mse_scores_match_scalar(self, operator):
        fn = get_function(operator)
        fitness = QuantizedMSEFitness(fn)
        pop = make_population(fn, size=12)
        batch = fitness.batch_call(pop)
        scalar = np.array([fitness(row) for row in pop])
        np.testing.assert_array_equal(batch, scalar)

    def test_quantized_mse_with_eval_domain_matches_scalar(self):
        fn = get_function("gelu")
        fitness = QuantizedMSEFitness(fn, eval_domain=fn.search_range)
        pop = make_population(fn, size=12)
        np.testing.assert_array_equal(
            fitness.batch_call(pop), np.array([fitness(row) for row in pop])
        )

    def test_default_batch_call_falls_back_to_scalar(self):
        class WidthFitness(FitnessFunction):
            def __call__(self, breakpoints):
                return float(np.max(breakpoints) - np.min(breakpoints))

        pop = make_population(get_function("gelu"), size=6)
        fitness = WidthFitness()
        np.testing.assert_array_equal(
            fitness.batch_call(pop), np.array([fitness(row) for row in pop])
        )


class TestEngineParity:
    def run_pair(self, operator="gelu", use_rm=True, seed=0, generations=25, pop=14):
        results = {}
        for engine in ("batch", "legacy"):
            outcome = GQALUT.for_operator(operator, num_entries=8, use_rm=use_rm).search(
                generations=generations,
                population_size=pop,
                seed=seed,
                engine=engine,
            )
            results[engine] = outcome.ga_result
        return results["batch"], results["legacy"]

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_seeded_run_identical_across_engines_rm(self, seed):
        batch, legacy = self.run_pair(seed=seed)
        np.testing.assert_array_equal(batch.best_breakpoints, legacy.best_breakpoints)
        assert batch.best_fitness == legacy.best_fitness
        np.testing.assert_array_equal(
            batch.best_ever_breakpoints, legacy.best_ever_breakpoints
        )
        assert batch.history == legacy.history

    def test_seeded_run_identical_across_engines_gaussian(self):
        batch, legacy = self.run_pair(use_rm=False, seed=3)
        np.testing.assert_array_equal(batch.best_breakpoints, legacy.best_breakpoints)
        assert batch.best_fitness == legacy.best_fitness

    def test_direct_genetic_search_parity_with_custom_fitness(self):
        class WidthFitness(FitnessFunction):
            def __call__(self, breakpoints):
                return float(np.sum(np.abs(np.asarray(breakpoints))))

        settings = GASettings(
            num_breakpoints=5, population_size=10, generations=12, seed=11
        )
        results = {}
        for engine in ("batch", "legacy"):
            ga = GeneticSearch(WidthFitness(), (-4.0, 4.0), settings, engine=engine)
            results[engine] = ga.run()
        np.testing.assert_array_equal(
            results["batch"].best_breakpoints, results["legacy"].best_breakpoints
        )
        assert results["batch"].history == results["legacy"].history

    def test_unknown_engine_rejected(self):
        fitness = GridMSEFitness(get_function("gelu"), grid_step=0.1)
        with pytest.raises(ValueError):
            GeneticSearch(fitness, (-4.0, 4.0), engine="turbo")


class TestDedupCache:
    def test_cache_removes_fitness_work_but_counts_logical_evals(self):
        batch, legacy = TestEngineParity().run_pair(seed=0, generations=30)
        assert batch.evaluations == legacy.evaluations
        assert legacy.fitness_calls == legacy.evaluations
        assert legacy.cache_hits == 0
        assert batch.fitness_calls < batch.evaluations
        assert batch.cache_hits > 0
        assert batch.fitness_calls + batch.cache_hits == batch.evaluations

    def test_counters_reset_between_runs(self):
        """Regression: fitness_calls/cache_hits must be per-run, not
        accumulated instance state."""
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.05)
        settings = GASettings(num_breakpoints=7, population_size=8, generations=3, seed=1)
        for engine in ("batch", "legacy"):
            ga = GeneticSearch(fitness, fn.search_range, settings, engine=engine)
            first, second = ga.run(), ga.run()
            for result in (first, second):
                assert result.fitness_calls + result.cache_hits == result.evaluations
            if engine == "legacy":
                assert second.fitness_calls == second.evaluations
            else:
                # Second run starts with a warm cache: strictly less work.
                assert second.fitness_calls < first.fitness_calls

    def test_malformed_batch_call_rejected(self):
        class BrokenFitness(FitnessFunction):
            def __call__(self, breakpoints):
                return 0.0

            def batch_call(self, population):
                return np.zeros(1)  # wrong length

        settings = GASettings(num_breakpoints=3, population_size=6, generations=2, seed=0)
        ga = GeneticSearch(BrokenFitness(), (-1.0, 1.0), settings, engine="batch")
        with pytest.raises(ValueError):
            ga.run()

    def test_cache_eviction_keeps_results_correct(self):
        fn = get_function("gelu")
        fitness = GridMSEFitness(fn, grid_step=0.05)
        settings = GASettings(
            num_breakpoints=7, population_size=10, generations=15, seed=4
        )
        tiny = GeneticSearch(fitness, fn.search_range, settings, engine="batch", cache_size=8)
        full = GeneticSearch(fitness, fn.search_range, settings, engine="batch")
        a, b = tiny.run(), full.run()
        np.testing.assert_array_equal(a.best_breakpoints, b.best_breakpoints)
        assert a.history == b.history
        assert a.fitness_calls >= b.fitness_calls  # eviction re-scores, never corrupts


class TestCrossoverWindow:
    def test_swap_can_start_at_last_index(self):
        """Regression for the `integers(0, n - 1)` bias: the swap window must
        be able to cover exactly the top breakpoint."""
        fitness = GridMSEFitness(get_function("gelu"), grid_step=0.1)
        ga = GeneticSearch(
            fitness, (-4.0, 4.0), GASettings(num_breakpoints=7, seed=123)
        )
        a = np.arange(7, dtype=np.float64)
        b = a + 100.0  # swapped-in values are unambiguous after sorting
        top_only = False
        for _ in range(500):
            child_a, _ = ga._crossover(a, b)
            swapped_in = child_a[child_a >= 100.0] - 100.0
            if swapped_in.size == 1 and swapped_in[0] == 6.0:
                top_only = True
                break
        assert top_only, "window never covered only the last breakpoint"

    def test_crossover_preserves_multiset_and_sortedness(self):
        fitness = GridMSEFitness(get_function("gelu"), grid_step=0.1)
        ga = GeneticSearch(fitness, (-4.0, 4.0), GASettings(num_breakpoints=7, seed=5))
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = np.sort(rng.uniform(-4, 4, 7))
            b = np.sort(rng.uniform(-4, 4, 7))
            child_a, child_b = ga._crossover(a, b)
            assert np.all(np.diff(child_a) >= 0) and np.all(np.diff(child_b) >= 0)
            np.testing.assert_allclose(
                np.sort(np.concatenate([child_a, child_b])),
                np.sort(np.concatenate([a, b])),
            )


class TestBatchedEvaluator:
    def test_mse_matrix_matches_scalar_sweep(self):
        fn = get_function("gelu")
        pop = make_population(fn, size=6)
        pwls = fit_pwl_batch(fn.fn, pop, fn.search_range).to_fixed_point(5)
        evaluator = QuantizedPWLEvaluator(fn, frac_bits=5)
        matrix = evaluator.mse_matrix(pwls)
        assert matrix.shape == (7, 6)
        for p in range(6):
            sweep = evaluator.sweep(pwls.row(p))
            for s_idx, scale in enumerate(sweep):
                assert matrix[s_idx, p] == sweep[scale]

    def test_average_mse_batch_matches_scalar(self):
        fn = get_function("exp")
        pop = make_population(fn, size=5)
        pwls = fit_pwl_batch(fn.fn, pop, fn.search_range).to_fixed_point(5)
        evaluator = QuantizedPWLEvaluator(fn, frac_bits=5)
        averages = evaluator.average_mse_batch(pwls)
        for p in range(5):
            assert averages[p] == pytest.approx(
                evaluator.average_mse(pwls.row(p)), abs=1e-15
            )


class TestMutationBatchParity:
    def test_rounding_mutation_batch_matches_sequential_calls(self):
        mutation = RoundingMutation(mutate_range=(0, 6), theta_r=0.05,
                                    search_range=(-4.0, 4.0))
        rows = np.sort(np.random.default_rng(2).uniform(-4, 4, size=(6, 7)), axis=1)
        batched = mutation.mutate_batch(rows, np.random.default_rng(9))
        rng = np.random.default_rng(9)
        sequential = np.stack([mutation(row, rng) for row in rows])
        np.testing.assert_array_equal(batched, sequential)

    def test_normal_mutation_batch_shape_and_bounds(self):
        mutation = NormalMutation(search_range=(-4.0, 4.0), per_element_prob=1.0)
        rows = np.sort(np.random.default_rng(3).uniform(-4, 4, size=(5, 7)), axis=1)
        out = mutation.mutate_batch(rows, np.random.default_rng(0))
        assert out.shape == rows.shape
        assert np.all(out >= -4.0) and np.all(out <= 4.0)
        assert np.all(np.diff(out, axis=1) >= 0)
