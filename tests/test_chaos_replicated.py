"""Chaos tests for the replicated serving supervisor.

The supervisor's crash-recovery contract, proven under the deterministic
fault harness (every seam is indexed by replica, so a test kills replica
0 while replica 1 serves):

* a replica SIGKILLed with a batch in flight loses **zero accepted
  requests** — the batch is re-dispatched to a survivor and every answer
  is bit-identical to the no-fault run (inference is pure);
* a crash-looping replica trips the circuit breaker (FAILED, no more
  restarts) and ``health()`` degrades; with *every* replica failed,
  requests fail fast with ``NoHealthyReplicaError``;
* a replica whose heartbeat stalls (alive but wedged) is killed and
  restarted;
* a hot-swap that delivers corrupt bits (strict-loads fine, wrong
  values — only the canary can catch it) or errors mid-apply is rolled
  back fleet-wide: the old model keeps serving, bit-exactly, and a later
  clean swap still promotes;
* the two ``slow_chaos``-marked scenarios run the same proofs under
  sustained load (kill mid-traffic, rolling swap mid-traffic with a
  no-mixed-responses check) and are skipped in tier-1 unless
  ``REPRO_SLOW_CHAOS=1``.

Fault plans are installed *before* the server forks its workers, so the
replicas inherit them (each worker reinstalls a fresh per-process fault
state with its own call counters).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.reliability import FaultPlan, FaultSpec, RetryPolicy, inject
from repro.serve import (
    NoHealthyReplicaError,
    ReplicaDiedError,
    ReplicatedServer,
    SwapFailedError,
)

OPERATORS = ("exp", "gelu", "div", "rsqrt")

# Fast-recovery knobs shared by the chaos servers: quick heartbeats and
# near-immediate restarts keep every scenario inside a couple of seconds.
FAST = dict(
    max_wait_ms=1.0,
    heartbeat_ms=40.0,
    restart_policy=RetryPolicy(base_delay=0.01, multiplier=1.0, jitter=0.0),
)


def build_model():
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(ModelConfig(image_size=16, embed_dim=16, depth=1), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture(scope="module")
def served_model():
    model = build_model()
    model.predict(np.random.default_rng(0).normal(size=(1, 16, 16, 3)), engine="eager")
    return model


def make_images(count, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(16, 16, 3)) for _ in range(count)]


def reference_for(model, images):
    return [model.predict(image[None], engine="eager")[0] for image in images]


def wait_until(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def perturbed_head_state(model, scale=7.0):
    state = dict(model.state_dict())
    key = next(name for name in state if "head" in name and name.endswith("bias"))
    state[key] = state[key] + np.arange(state[key].size, dtype=np.float64) * scale
    return state


def serve_until_first_death(server, images, reference, rounds=50):
    """Feed traffic until the kill seam has fired (replica 0 must actually
    receive a batch to die on — work distribution between dispatchers is
    racy), asserting bit-parity on every answered round."""
    for _ in range(rounds):
        results = server.predict_many(images, timeout=120)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got, want)
        if server.health()["supervisor"]["replica_deaths"] >= 1:
            return
    raise AssertionError("replica 0 never received a batch in %d rounds" % rounds)


class TestCrashRecovery:
    def test_kill_mid_batch_redispatches_bit_identically(self, served_model):
        """Replica 0 dies with its first batch in flight; nobody notices."""
        images = make_images(10, seed=3)
        reference = reference_for(served_model, images)
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_calls=(1,)),))
        with inject(plan):
            with ReplicatedServer(served_model, replicas=2, **FAST) as server:
                serve_until_first_death(server, images, reference)
                stats = server.stats()
                health = server.health()
        assert stats.failed == 0  # zero accepted requests lost
        assert health["supervisor"]["replica_deaths"] >= 1
        assert health["supervisor"]["redispatches"] >= 1

    def test_dead_replica_restarts_and_serves_again(self, served_model):
        images = make_images(4, seed=4)
        reference = reference_for(served_model, images)
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_calls=(1,)),))
        with inject(plan):
            with ReplicatedServer(served_model, replicas=2, **FAST) as server:
                serve_until_first_death(server, images, reference)
                assert wait_until(
                    lambda: all(
                        entry["state"] == "healthy"
                        for entry in server.health()["replicas"]
                    )
                )
                health = server.health()
                assert health["supervisor"]["restarts"] >= 1
                assert health["replicas"][0]["generation"] >= 2
                # The restarted fleet still answers bit-identically.
                results = server.predict_many(images, timeout=120)
                for got, want in zip(results, reference):
                    np.testing.assert_array_equal(got, want)

    def test_crash_loop_trips_breaker_and_degrades_health(self, served_model):
        """Replica 0 dies on every batch: FAILED after 3 deaths; replica 1
        keeps answering everything, bit-identically."""
        images = make_images(3, seed=5)
        reference = reference_for(served_model, images)
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_always=True),))
        with inject(plan):
            with ReplicatedServer(
                served_model,
                replicas=2,
                crash_loop_threshold=3,
                crash_loop_window_s=60.0,
                **FAST,
            ) as server:
                def feed_until_failed():
                    if server.health()["replicas"][0]["state"] == "failed":
                        return True
                    # Keep traffic flowing so replica 0 gets batches to die on.
                    for image in images:
                        server.predict(image, timeout=120)
                    return server.health()["replicas"][0]["state"] == "failed"

                assert wait_until(feed_until_failed, timeout=30.0)
                health = server.health()
                assert health["status"] == "degraded"
                assert health["replicas"][0]["state"] == "failed"
                assert health["replicas"][0]["crashes_in_window"] >= 3
                results = server.predict_many(images, timeout=120)
                for got, want in zip(results, reference):
                    np.testing.assert_array_equal(got, want)
                assert server.stats().failed == 0

    def test_all_replicas_failed_fails_fast(self, served_model):
        """A single replica crash-looping to FAILED leaves no healthy
        fleet: pending work fails with NoHealthyReplicaError, health is
        'failed', and new submissions fail fast."""
        image = make_images(1, seed=6)[0]
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:*", fail_always=True),))
        with inject(plan):
            with ReplicatedServer(
                served_model,
                replicas=1,
                crash_loop_threshold=2,
                crash_loop_window_s=60.0,
                max_redispatch=1,
                **FAST,
            ) as server:
                with pytest.raises((ReplicaDiedError, NoHealthyReplicaError)):
                    server.predict(image, timeout=120)
                assert wait_until(
                    lambda: server.health()["replicas"][0]["state"] == "failed"
                )
                assert server.health()["status"] == "failed"
                with pytest.raises(NoHealthyReplicaError):
                    server.predict(image, timeout=120)

    def test_restart_budget_exhaustion_trips_breaker(self, served_model):
        """RetryPolicy.max_elapsed = 0 means no restart budget at all: the
        first death goes straight to FAILED with zero restarts."""
        images = make_images(2, seed=7)
        reference = reference_for(served_model, images)
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_calls=(1,)),))
        policy = RetryPolicy(base_delay=0.01, jitter=0.0, max_elapsed=0.0)
        with inject(plan):
            with ReplicatedServer(
                served_model, replicas=2, restart_policy=policy,
                max_wait_ms=1.0, heartbeat_ms=40.0,
            ) as server:
                serve_until_first_death(server, images, reference)
                assert wait_until(
                    lambda: server.health()["replicas"][0]["state"] == "failed"
                )
                health = server.health()
                assert health["status"] == "degraded"
                assert health["supervisor"]["restarts"] == 0

    def test_wedged_serve_loop_hits_batch_timeout(self, served_model):
        """Replica 0's serve loop wedges mid-batch while its heartbeat
        *thread* keeps beating — heartbeat staleness can never fire.
        The batch deadline kills it and the batch re-dispatches to
        replica 1; no accepted request is lost."""
        images = make_images(4, seed=13)
        reference = reference_for(served_model, images)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="replica.batch:0",
                    delay_calls=(1,),
                    delay_seconds=30.0,
                ),
            )
        )
        with inject(plan):
            with ReplicatedServer(
                served_model, replicas=2, batch_timeout_s=0.5, **FAST
            ) as server:
                def wedged_and_recovered():
                    if server.health()["supervisor"]["batch_timeouts"] >= 1:
                        return True
                    # Keep feeding until replica 0 receives a batch to
                    # wedge on; every answered round stays bit-exact.
                    results = server.predict_many(images, timeout=120)
                    for got, want in zip(results, reference):
                        np.testing.assert_array_equal(got, want)
                    return server.health()["supervisor"]["batch_timeouts"] >= 1

                assert wait_until(wedged_and_recovered, timeout=60.0)
                health = server.health()
                assert health["supervisor"]["redispatches"] >= 1
                assert server.stats().failed == 0

    def test_breaker_tripped_slot_rejects_targeted_commands(self, served_model):
        """A command aimed at a slot the breaker has retired fails with
        ReplicaCrashLoopError — unlike a plain death, the slot will
        never come back on its own."""
        from concurrent.futures import Future

        from repro.reliability import ReplicaCrashLoopError
        from repro.serve.supervisor import _SwapCommand

        images = make_images(2, seed=14)
        plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_always=True),))
        with inject(plan):
            with ReplicatedServer(
                served_model,
                replicas=2,
                crash_loop_threshold=2,
                crash_loop_window_s=60.0,
                **FAST,
            ) as server:
                def feed_until_failed():
                    if server.health()["replicas"][0]["state"] == "failed":
                        return True
                    for image in images:
                        server.predict(image, timeout=120)
                    return server.health()["replicas"][0]["state"] == "failed"

                assert wait_until(feed_until_failed, timeout=30.0)
                reply = Future()
                server._slots[0].direct.put(
                    _SwapCommand(
                        dict(served_model.state_dict()), None, images[0], reply
                    )
                )
                with pytest.raises(ReplicaCrashLoopError):
                    reply.result(timeout=30)

    def test_stalled_heartbeat_is_killed_and_restarted(self, served_model):
        """Replica 0's heartbeat thread hangs (process alive, wedged):
        the monitor SIGKILLs it; replica 1 serves throughout."""
        images = make_images(4, seed=8)
        reference = reference_for(served_model, images)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="replica.heartbeat:0",
                    delay_always=True,
                    delay_seconds=5.0,
                ),
            )
        )
        with inject(plan):
            with ReplicatedServer(served_model, replicas=2, **FAST) as server:
                assert wait_until(
                    lambda: server.health()["supervisor"]["heartbeat_kills"] >= 1
                )
                results = server.predict_many(images, timeout=120)
                for got, want in zip(results, reference):
                    np.testing.assert_array_equal(got, want)
                assert server.stats().failed == 0


class TestSwapChaos:
    def test_corrupt_state_mid_swap_rolls_back_then_clean_swap_promotes(
        self, served_model
    ):
        """Replica 1 silently corrupts the delivered state (strict-loads
        fine, wrong bits): only the canary check catches it.  The fleet
        rolls back to the old model — verified bit-exactly — and a second,
        clean swap still promotes (both canary directions exercised)."""
        images = make_images(5, seed=9)
        old_state = served_model.state_dict()
        old_reference = reference_for(served_model, images)
        new_state = perturbed_head_state(served_model)
        plan = FaultPlan(
            specs=(FaultSpec(site="replica.swap.corrupt:1", fail_calls=(1,)),)
        )
        try:
            with inject(plan):
                with ReplicatedServer(
                    served_model, replicas=2, canary=images[0], **FAST
                ) as server:
                    with pytest.raises(SwapFailedError, match="diverged"):
                        server.swap_state(new_state)
                    health = server.health()
                    assert health["supervisor"]["rollbacks"] == 1
                    assert health["model_generation"] == 0
                    # Old model serves, bit-exactly, on every replica.
                    results = server.predict_many(images, timeout=120)
                    for got, want in zip(results, old_reference):
                        np.testing.assert_array_equal(got, want)
                    # The corruption seam only fires once: a clean retry
                    # promotes the fleet.
                    report = server.swap_state(new_state)
                    assert report["rolled_back"] is False
                    new_reference = reference_for(served_model, images)
                    results = server.predict_many(images, timeout=120)
                    for got, want in zip(results, new_reference):
                        np.testing.assert_array_equal(got, want)
        finally:
            served_model.load_state_dict(old_state, strict=True)

    def test_swap_error_mid_apply_rolls_back(self, served_model):
        """An exception inside the first replica's swap handler aborts the
        rollout before any promotion; the old model keeps serving."""
        images = make_images(4, seed=10)
        old_state = served_model.state_dict()
        old_reference = reference_for(served_model, images)
        new_state = perturbed_head_state(served_model)
        plan = FaultPlan(specs=(FaultSpec(site="replica.swap:0", fail_calls=(1,)),))
        try:
            with inject(plan):
                with ReplicatedServer(
                    served_model, replicas=2, canary=images[0], **FAST
                ) as server:
                    with pytest.raises(SwapFailedError):
                        server.swap_state(new_state)
                    health = server.health()
                    assert health["supervisor"]["swaps"] == 0
                    assert health["supervisor"]["rollbacks"] == 1
                    results = server.predict_many(images, timeout=120)
                    for got, want in zip(results, old_reference):
                        np.testing.assert_array_equal(got, want)
        finally:
            served_model.load_state_dict(old_state, strict=True)


@pytest.mark.slow_chaos
class TestSustainedLoadChaos:
    """The same proofs under continuous traffic (CI chaos job only)."""

    def _pound(self, server, images, stop, outcomes):
        index = 0
        while not stop.is_set():
            image_index = index % len(images)
            try:
                result = server.predict(images[image_index], timeout=120)
            except Exception as error:  # collected, asserted empty later
                outcomes.append((image_index, error))
            else:
                outcomes.append((image_index, result))
            index += 1

    def test_kill_under_sustained_load_loses_nothing(self, served_model):
        images = make_images(4, seed=11)
        reference = reference_for(served_model, images)
        with ReplicatedServer(served_model, replicas=2, **FAST) as server:
            stop = threading.Event()
            outcomes = []
            pounder = threading.Thread(
                target=self._pound, args=(server, images, stop, outcomes)
            )
            pounder.start()
            try:
                time.sleep(0.5)
                import os
                import signal

                victim = server.health()["replicas"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                time.sleep(1.5)
            finally:
                stop.set()
                pounder.join(timeout=120)
            assert server.drain(timeout=120)
        assert len(outcomes) > 0
        errors = [entry for entry in outcomes if isinstance(entry[1], Exception)]
        assert errors == []  # zero dropped requests across the kill
        for image_index, result in outcomes:
            np.testing.assert_array_equal(result, reference[image_index])
        assert server.health()["supervisor"]["replica_deaths"] >= 1

    def test_rolling_swap_under_sustained_load_never_mixes_models(
        self, served_model
    ):
        images = make_images(4, seed=12)
        old_state = served_model.state_dict()
        old_reference = reference_for(served_model, images)
        new_state = perturbed_head_state(served_model)
        try:
            with ReplicatedServer(
                served_model, replicas=2, canary=images[0], **FAST
            ) as server:
                stop = threading.Event()
                outcomes = []
                pounder = threading.Thread(
                    target=self._pound, args=(server, images, stop, outcomes)
                )
                pounder.start()
                try:
                    time.sleep(0.4)
                    report = server.swap_state(new_state)
                    assert report["rolled_back"] is False
                    new_reference = reference_for(served_model, images)
                    time.sleep(0.4)
                finally:
                    stop.set()
                    pounder.join(timeout=120)
                assert server.drain(timeout=120)
                # Requests answered after the swap completed come from the
                # new model only.
                post_swap = server.predict_many(images, timeout=120)
                for got, want in zip(post_swap, new_reference):
                    np.testing.assert_array_equal(got, want)
        finally:
            served_model.load_state_dict(old_state, strict=True)
        errors = [entry for entry in outcomes if isinstance(entry[1], Exception)]
        assert errors == []  # the swap dropped nothing
        # Every mid-swap response is uniformly old-model or new-model —
        # never a mixture of the two.
        mixed = 0
        for image_index, result in outcomes:
            is_old = np.array_equal(result, old_reference[image_index])
            is_new = np.array_equal(result, new_reference[image_index])
            if not (is_old or is_new):
                mixed += 1
        assert mixed == 0
