"""Batch/scalar equivalence tests for the vectorized pwl + LUT engine.

The batched genetic engine is only correct if every batched primitive is
bit-identical to its scalar counterpart per row — these tests pin that
contract for :func:`fit_pwl_batch`, :class:`PiecewiseLinearBatch` and
:class:`QuantizedLUTBatch`.
"""

import numpy as np
import pytest

from repro.core.lut import QuantizedLUT, QuantizedLUTBatch
from repro.core.pwl import (
    PiecewiseLinear,
    PiecewiseLinearBatch,
    fit_pwl,
    fit_pwl_batch,
    segment_counts,
    uniform_breakpoints,
)
from repro.functions.registry import get_function
from repro.quant.quantizer import QuantSpec


def population_with_degenerates(fn, size=24, num_breakpoints=7, seed=0):
    """Random rows plus the pathological cases the GA actually produces."""
    rng = np.random.default_rng(seed)
    lo, hi = fn.search_range
    pop = np.sort(rng.uniform(lo, hi, size=(size, num_breakpoints)), axis=1)
    pop[0] = np.full(num_breakpoints, (lo + hi) / 2)  # all duplicates
    pop[1] = np.sort(np.concatenate([[lo - 10.0, hi + 10.0], pop[1][2:]]))  # clipped
    mid = (lo + hi) / 2
    pop[2] = np.sort(
        np.concatenate([[mid, mid, mid], pop[2][3:]])
    )  # duplicate run after RM-style rounding
    return pop


class TestFitPWLBatch:
    @pytest.mark.parametrize("operator", ["gelu", "exp", "hswish"])
    @pytest.mark.parametrize("method", ["interpolate", "lstsq"])
    def test_rows_bit_identical_to_scalar_fit(self, operator, method):
        fn = get_function(operator)
        pop = population_with_degenerates(fn)
        batch = fit_pwl_batch(fn.fn, pop, fn.search_range, method=method)
        for i in range(pop.shape[0]):
            scalar = fit_pwl(fn.fn, pop[i], fn.search_range, method=method)
            np.testing.assert_array_equal(batch.breakpoints[i], scalar.breakpoints)
            np.testing.assert_array_equal(batch.slopes[i], scalar.slopes)
            np.testing.assert_array_equal(batch.intercepts[i], scalar.intercepts)

    def test_rejects_non_matrix_population(self):
        fn = get_function("gelu")
        with pytest.raises(ValueError):
            fit_pwl_batch(fn.fn, np.zeros(7), fn.search_range)

    def test_rejects_bad_range(self):
        fn = get_function("gelu")
        with pytest.raises(ValueError):
            fit_pwl_batch(fn.fn, np.zeros((3, 7)), (4.0, -4.0))

    def test_rejects_unknown_method(self):
        fn = get_function("gelu")
        with pytest.raises(ValueError):
            fit_pwl_batch(fn.fn, np.zeros((3, 7)), fn.search_range, method="spline")


class TestPiecewiseLinearBatch:
    def make_batch(self, operator="gelu", size=12):
        fn = get_function(operator)
        pop = population_with_degenerates(fn, size=size)
        return fn, fit_pwl_batch(fn.fn, pop, fn.search_range)

    def test_call_matches_scalar_rows_on_grid(self):
        fn, batch = self.make_batch()
        grid = fn.sample_grid(0.01)
        out = batch(grid)
        assert out.shape == (batch.population_size, grid.size)
        for i in range(batch.population_size):
            np.testing.assert_array_equal(out[i], batch.row(i)(grid))

    def test_call_matches_scalar_on_unsorted_input(self):
        fn, batch = self.make_batch()
        x = np.random.default_rng(1).uniform(-5, 5, size=33)  # unsorted fallback path
        out = batch(x)
        for i in range(batch.population_size):
            np.testing.assert_array_equal(out[i], batch.row(i)(x))

    def test_segment_index_matches_searchsorted(self):
        fn, batch = self.make_batch()
        grid = fn.sample_grid(0.05)
        idx = batch.segment_index(grid)
        for i in range(batch.population_size):
            np.testing.assert_array_equal(idx[i], batch.row(i).segment_index(grid))

    def test_per_row_input_matrix(self):
        fn, batch = self.make_batch(size=4)
        x = np.random.default_rng(2).uniform(-4, 4, size=(4, 17))
        out = batch(x)
        for i in range(4):
            np.testing.assert_array_equal(out[i], batch.row(i)(x[i]))

    def test_to_fixed_point_matches_scalar(self):
        _, batch = self.make_batch()
        fxp = batch.to_fixed_point(5)
        for i in range(batch.population_size):
            scalar = batch.row(i).to_fixed_point(5)
            np.testing.assert_array_equal(fxp.slopes[i], scalar.slopes)
            np.testing.assert_array_equal(fxp.intercepts[i], scalar.intercepts)

    def test_from_rows_round_trip(self):
        fn = get_function("gelu")
        rows = [
            fit_pwl(fn.fn, uniform_breakpoints(-4, 4, 8), fn.search_range),
            fit_pwl(fn.fn, np.linspace(-3, 3, 7), fn.search_range),
        ]
        batch = PiecewiseLinearBatch.from_rows(rows)
        assert batch.population_size == 2
        assert batch.num_entries == 8
        recovered = batch.row(1)
        assert isinstance(recovered, PiecewiseLinear)
        np.testing.assert_array_equal(recovered.slopes, rows[1].slopes)

    def test_from_rows_rejects_empty(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBatch.from_rows([])

    def test_rejects_unsorted_rows(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBatch(
                breakpoints=np.array([[1.0, 0.0]]),
                slopes=np.zeros((1, 3)),
                intercepts=np.zeros((1, 3)),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PiecewiseLinearBatch(
                breakpoints=np.zeros((1, 2)),
                slopes=np.zeros((1, 4)),
                intercepts=np.zeros((1, 4)),
            )

    def test_rejects_bad_input_shape(self):
        _, batch = self.make_batch(size=5)
        with pytest.raises(ValueError):
            batch(np.zeros((3, 9)))  # neither shared grid nor (P, G)


class TestSegmentCounts:
    def test_counts_invert_comparer(self):
        fn = get_function("gelu")
        pop = population_with_degenerates(fn, size=10)
        batch = fit_pwl_batch(fn.fn, pop, fn.search_range)
        grid = fn.sample_grid(0.03)
        counts = segment_counts(batch.breakpoints, grid)
        assert counts.shape == (10, batch.num_entries)
        np.testing.assert_array_equal(counts.sum(axis=1), np.full(10, grid.size))
        idx = batch.segment_index(grid)
        for i in range(10):
            np.testing.assert_array_equal(
                counts[i], np.bincount(idx[i], minlength=batch.num_entries)
            )


class TestQuantizedLUTBatch:
    def make(self, operator="gelu", size=10, scales=(1.0, 0.5, 0.25, 0.125)):
        fn = get_function(operator)
        pop = population_with_degenerates(fn, size=size)
        pwls = fit_pwl_batch(fn.fn, pop, fn.search_range).to_fixed_point(5)
        return QuantizedLUTBatch(pwl=pwls, scales=np.asarray(scales), frac_bits=5)

    def test_requires_power_of_two_scales(self):
        fn = get_function("gelu")
        pwls = fit_pwl_batch(
            fn.fn, population_with_degenerates(fn, size=3), fn.search_range
        )
        with pytest.raises(ValueError):
            QuantizedLUTBatch(pwl=pwls, scales=np.array([0.25, 0.3]))
        with pytest.raises(ValueError):
            QuantizedLUTBatch(pwl=pwls, scales=np.array([-0.5]))

    def test_lookups_bit_identical_to_scalar_lut(self):
        lut = self.make()
        codes = np.arange(-128, 128, dtype=np.float64)
        integer = lut.lookup_integer(codes)
        dequant = lut.lookup_dequantized(codes)
        assert integer.shape == (4, 10, 256)
        for s in range(lut.num_scales):
            for p in range(lut.population_size):
                scalar = lut.at(s, p)
                np.testing.assert_array_equal(integer[s, p], scalar.lookup_integer(codes))
                np.testing.assert_array_equal(
                    dequant[s, p], scalar.lookup_dequantized(codes)
                )

    def test_unsorted_codes_fallback_matches(self):
        lut = self.make(size=4, scales=(0.5,))
        codes = np.array([5.0, -3.0, 100.0, -128.0, 0.0])
        out = lut.lookup_integer(codes)
        for p in range(4):
            np.testing.assert_array_equal(out[0, p], lut.at(0, p).lookup_integer(codes))

    def test_quantized_breakpoints_match_scalar(self):
        lut = self.make(size=5)
        qbp = lut.quantized_breakpoints
        for s in range(lut.num_scales):
            for p in range(5):
                np.testing.assert_array_equal(
                    qbp[s, p], lut.at(s, p).quantized_breakpoints
                )

    def test_shifted_intercepts_match_scalar(self):
        lut = self.make(size=5)
        shifted = lut.shifted_intercepts
        for s in range(lut.num_scales):
            for p in range(5):
                np.testing.assert_array_equal(
                    shifted[s, p], lut.at(s, p).shifted_intercepts
                )

    def test_spec_is_respected(self):
        lut = self.make()
        assert lut.spec == QuantSpec(bits=8, signed=True)
        assert lut.num_entries == 8
        assert isinstance(lut.at(0, 0), QuantizedLUT)
