"""Tests for the quantization substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    DyadicNumber,
    FixedPointFormat,
    MinMaxObserver,
    MovingAverageObserver,
    QuantSpec,
    UniformQuantizer,
    dequantize,
    dyadic_rescale,
    fxp_round,
    from_fixed_point,
    mae,
    max_abs_error,
    mse,
    nearest_power_of_two,
    normalized_mse,
    power_of_two_exponent,
    quant_bounds,
    quantize,
    required_integer_bits,
    rmse,
    shift_for_scale,
    sqnr_db,
    to_dyadic,
    to_fixed_point,
)
from repro.quant.power_of_two import apply_shift, is_power_of_two


class TestQuantBounds:
    def test_int8_signed(self):
        assert quant_bounds(8, True) == (-128, 127)

    def test_int8_unsigned(self):
        assert quant_bounds(8, False) == (0, 255)

    def test_int16(self):
        assert quant_bounds(16, True) == (-32768, 32767)

    def test_rejects_tiny_bitwidth(self):
        with pytest.raises(ValueError):
            quant_bounds(1)


class TestQuantizeDequantize:
    def test_roundtrip_on_grid_is_exact(self):
        scale = 0.25
        values = np.arange(-128, 128) * scale
        codes = quantize(values, scale)
        np.testing.assert_allclose(dequantize(codes, scale), values)

    def test_clipping_at_bounds(self):
        codes = quantize([1000.0, -1000.0], scale=1.0, bits=8)
        np.testing.assert_array_equal(codes, [127, -128])

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            quantize([1.0], 0.0)
        with pytest.raises(ValueError):
            dequantize([1.0], -1.0)

    @given(st.floats(-100, 100), st.sampled_from([1.0, 0.5, 0.25, 0.125, 0.0625]))
    @settings(max_examples=200, deadline=None)
    def test_quantization_error_bounded_by_half_scale(self, value, scale):
        code = quantize(value, scale, bits=16)
        reconstructed = dequantize(code, scale)
        # Within the representable range the error is at most scale / 2.
        lo, hi = -32768 * scale, 32767 * scale
        if lo <= value <= hi:
            assert abs(reconstructed - value) <= scale / 2 + 1e-12


class TestUniformQuantizer:
    def test_grid_has_all_levels(self):
        q = UniformQuantizer(0.5, QuantSpec(bits=8, signed=True))
        grid = q.grid()
        assert grid.shape == (256,)
        assert grid[0] == pytest.approx(-64.0)
        assert grid[-1] == pytest.approx(63.5)

    def test_from_range_symmetric(self):
        q = UniformQuantizer.from_range(-3.0, 3.0)
        lo, hi = q.representable_range()
        assert lo <= -3.0 <= hi or lo <= 3.0 <= hi
        assert q.scale == pytest.approx(3.0 / 128)

    def test_from_range_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformQuantizer.from_range(-1.0, 1.0, QuantSpec(bits=8, signed=False))

    def test_power_of_two_spec_snaps_scale(self):
        q = UniformQuantizer(0.3, QuantSpec(bits=8, signed=True, power_of_two_scale=True))
        assert is_power_of_two(q.scale)

    def test_roundtrip_idempotent(self):
        q = UniformQuantizer(0.1)
        x = np.linspace(-5, 5, 100)
        once = q.roundtrip(x)
        twice = q.roundtrip(once)
        np.testing.assert_allclose(once, twice)

    def test_integer_dtype_selection(self):
        assert QuantSpec(8, True).integer_dtype() == np.dtype(np.int8)
        assert QuantSpec(16, True).integer_dtype() == np.dtype(np.int16)
        assert QuantSpec(32, True).integer_dtype() == np.dtype(np.int32)
        assert QuantSpec(8, False).integer_dtype() == np.dtype(np.uint8)


class TestPowerOfTwo:
    def test_nearest_power_of_two(self):
        assert nearest_power_of_two(0.3) == pytest.approx(0.25)
        assert nearest_power_of_two(0.75) == pytest.approx(1.0)
        assert nearest_power_of_two(3.0) == pytest.approx(4.0)

    def test_exponent_matches_log2(self):
        assert power_of_two_exponent(0.25) == -2
        assert power_of_two_exponent(8.0) == 3

    def test_shift_for_scale(self):
        assert shift_for_scale(0.25) == -2
        assert shift_for_scale(4.0) == 2

    def test_shift_for_non_power_raises(self):
        with pytest.raises(ValueError):
            shift_for_scale(0.3)

    def test_apply_shift_matches_division(self):
        values = np.array([1.0, -2.0, 3.5])
        np.testing.assert_allclose(apply_shift(values, -3), values * 8.0)
        np.testing.assert_allclose(apply_shift(values, 2), values / 4.0)

    @given(st.integers(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_powers_of_two_are_fixed_points(self, exponent):
        scale = 2.0 ** exponent
        assert nearest_power_of_two(scale) == pytest.approx(scale)
        assert is_power_of_two(scale)


class TestFixedPoint:
    def test_fxp_round_matches_formula(self):
        x = np.array([0.1, 0.2, -0.37])
        np.testing.assert_allclose(fxp_round(x, 5), np.round(x * 32) / 32)

    def test_roundtrip_codes(self):
        x = np.array([0.5, -1.25, 3.0])
        codes = to_fixed_point(x, 4)
        np.testing.assert_allclose(from_fixed_point(codes, 4), x)

    def test_required_integer_bits(self):
        assert required_integer_bits([0.7]) == 0
        assert required_integer_bits([1.2]) == 1
        assert required_integer_bits([-5.0]) == 3
        assert required_integer_bits([]) == 0

    def test_format_resolution_and_bounds(self):
        fmt = FixedPointFormat(integer_bits=2, frac_bits=5)
        assert fmt.total_bits == 8
        assert fmt.resolution == pytest.approx(1 / 32)
        assert fmt.max_value == pytest.approx(4 - 1 / 32)
        assert fmt.min_value == pytest.approx(-4.0)

    def test_format_quantize_saturates(self):
        fmt = FixedPointFormat(integer_bits=2, frac_bits=5)
        assert fmt.quantize(100.0) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-100.0) == pytest.approx(fmt.min_value)

    def test_format_for_values(self):
        fmt = FixedPointFormat.for_values([3.7, -1.0], frac_bits=5)
        assert fmt.integer_bits == 2

    @given(st.floats(-3.9, 3.9), st.integers(1, 10))
    @settings(max_examples=200, deadline=None)
    def test_fxp_round_error_bound(self, value, frac_bits):
        rounded = float(fxp_round(value, frac_bits))
        assert abs(rounded - value) <= 2.0 ** (-frac_bits) / 2 + 1e-12

    def test_negative_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            fxp_round(1.0, -1)


class TestDyadic:
    def test_value_reconstruction(self):
        d = DyadicNumber(mantissa=3, exponent=2)
        assert d.value == pytest.approx(0.75)

    def test_to_dyadic_accuracy(self):
        for value in (0.1, 0.33, 1.7, 123.4):
            d = to_dyadic(value, bits=16)
            assert d.value == pytest.approx(value, rel=1e-4)

    def test_to_dyadic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            to_dyadic(0.0)

    def test_multiply_close_to_float(self):
        x = np.arange(-100, 100, dtype=np.float64)
        result = dyadic_rescale(x, 0.37)
        np.testing.assert_allclose(result, np.round(x * 0.37), atol=1.0)


class TestObservers:
    def test_minmax_tracks_extremes(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -2.0]))
        obs.observe(np.array([5.0]))
        assert obs.observed_range == (-2.0, 5.0)

    def test_minmax_quantizer_covers_range(self):
        obs = MinMaxObserver()
        obs.observe(np.linspace(-3, 7, 50))
        q = obs.make_quantizer()
        lo, hi = q.representable_range()
        assert hi >= 7.0 - q.scale

    def test_observer_without_data_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().observed_range

    def test_moving_average_smooths(self):
        obs = MovingAverageObserver(momentum=0.5)
        obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([0.0, 3.0]))
        assert obs.observed_range[1] == pytest.approx(2.0)

    def test_moving_average_bad_momentum(self):
        with pytest.raises(ValueError):
            MovingAverageObserver(momentum=1.5)


class TestMetrics:
    def test_mse_zero_for_identical(self):
        x = np.linspace(0, 1, 10)
        assert mse(x, x) == 0.0

    def test_mse_and_rmse_consistent(self):
        a = np.array([1.0, 2.0])
        b = np.array([2.0, 4.0])
        assert rmse(a, b) == pytest.approx(np.sqrt(mse(a, b)))

    def test_mae_and_max_error(self):
        a = np.array([0.0, 0.0])
        b = np.array([1.0, 3.0])
        assert mae(a, b) == pytest.approx(2.0)
        assert max_abs_error(a, b) == pytest.approx(3.0)

    def test_normalized_mse_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        b = a * 1.01
        assert normalized_mse(a * 10, b * 10) == pytest.approx(normalized_mse(a, b), rel=1e-6)

    def test_sqnr_increases_with_accuracy(self):
        ref = np.linspace(1, 2, 100)
        good = ref + 1e-4
        bad = ref + 1e-1
        assert sqnr_db(good, ref) > sqnr_db(bad, ref)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mse(np.array([]), np.array([]))
