"""Numerical gradcheck for every op in the VJP registry.

For each registered op the harness compares the autograd gradient (the
op's registered VJP, routed through ``apply_op`` and ``Tensor.backward``)
against a central finite difference of the forward function, for every
input, under a random cotangent.  Broadcasting cases are included for the
binary arithmetic ops, and reduction ops are checked across axis /
keepdims variants.

Straight-through estimators (``round_ste``, ``clip_ste``) are a special
case: their forward is a step function whose true derivative is zero
almost everywhere, and their VJP is *defined* to be the derivative of a
smooth surrogate (the identity).  Those cases finite-difference the
surrogate instead — the check then pins that the registered VJP matches
the surrogate's derivative, which is the STE contract.

``test_every_registered_op_has_cases`` closes the loop: registering a new
op without adding a gradcheck case fails the suite, so the registry can
never silently grow unverified gradients.
"""

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.tensor import Tensor, apply_op

EPS = 1e-6
ATOL = 1e-4


@dataclasses.dataclass
class Case:
    """One gradcheck invocation of a registered op."""

    label: str
    inputs: Tuple[np.ndarray, ...]
    params: Dict = dataclasses.field(default_factory=dict)
    # Finite-difference target when the op's forward is non-differentiable
    # (STE ops): an array-level function with the op forward's signature.
    surrogate: Optional[Callable] = None
    atol: float = ATOL


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _away_from(values: np.ndarray, points, margin: float = 1e-3) -> np.ndarray:
    """Nudge samples off non-differentiable points (kinks, boundaries)."""
    out = values.copy()
    for point in points:
        near = np.abs(out - point) < margin
        out[near] = point + margin * np.where(out[near] >= point, 2.0, -2.0)
    return out


def _positive(shape, seed=0, low=0.5) -> np.ndarray:
    return np.abs(_rng(seed).standard_normal(shape)) + low


def _normal(shape, seed=0) -> np.ndarray:
    return _rng(seed).standard_normal(shape)


def _smooth_table(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _smooth_table_slope(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


def _fused_table(x: np.ndarray):
    return np.tanh(x), 1.0 - np.tanh(x) ** 2


# Every registered op must appear here; see test_every_registered_op_has_cases.
CASES: Dict[str, List[Case]] = {
    "add": [
        Case("same-shape", (_normal((3, 4)), _normal((3, 4), 1))),
        Case("broadcast-bias", (_normal((3, 4)), _normal((4,), 2))),
        Case("broadcast-keepdim", (_normal((2, 3, 4)), _normal((2, 1, 4), 3))),
    ],
    "neg": [Case("plain", (_normal((3, 4)),))],
    "mul": [
        Case("same-shape", (_normal((3, 4)), _normal((3, 4), 1))),
        Case("broadcast-row", (_normal((3, 4)), _normal((1, 4), 2))),
        Case("broadcast-scalar", (_normal((2, 3)), _normal((), 4))),
    ],
    "div": [
        Case("same-shape", (_normal((3, 4)), _positive((3, 4), 1))),
        Case("broadcast-denominator", (_normal((3, 4)), _positive((4,), 2))),
    ],
    "pow": [
        Case("cube", (_normal((3, 4)),), {"exponent": 3.0}),
        Case("fractional", (_positive((3, 4)),), {"exponent": 1.7}),
        Case("inverse-sqrt", (_positive((5,)),), {"exponent": -0.5}),
    ],
    "matmul": [
        Case("2d", (_normal((3, 4)), _normal((4, 2), 1))),
        Case("batched", (_normal((2, 3, 4)), _normal((2, 4, 5), 1))),
    ],
    "reshape": [Case("flatten", (_normal((3, 4)),), {"shape": (2, 6)})],
    "transpose": [
        Case("2d", (_normal((3, 4)),), {"axes": (1, 0)}),
        Case("3d-roll", (_normal((2, 3, 4)),), {"axes": (2, 0, 1)}),
    ],
    "getitem": [
        Case("slice", (_normal((5, 3)),), {"index": (slice(1, 4),)}),
        Case("fancy-repeated", (_normal((4, 3)),),
             {"index": (np.array([0, 2, 2, 1]),)}),
        Case("mixed", (_normal((4, 5)),),
             {"index": (slice(None), np.array([1, 3]))}),
    ],
    "concatenate": [
        Case("axis0", (_normal((2, 3)), _normal((4, 3), 1)), {"axis": 0}),
        Case("axis1", (_normal((2, 3)), _normal((2, 1), 1), _normal((2, 2), 2)),
             {"axis": 1}),
    ],
    "scatter_sum": [
        Case(
            "two-shifted-taps",
            (_normal((2, 3, 3, 4)), _normal((2, 3, 3, 4), 1)),
            {
                "slices": ((slice(0, 3), slice(1, 4)), (slice(1, 4), slice(0, 3))),
                "shape": (2, 4, 4, 4),
            },
        )
    ],
    "sum": [
        Case("all", (_normal((3, 4)),)),
        Case("axis", (_normal((3, 4)),), {"axis": 1}),
        Case("axis-keepdims", (_normal((2, 3, 4)),), {"axis": 1, "keepdims": True}),
    ],
    "max": [
        Case("all", (_normal((3, 4)),)),
        Case("axis", (_normal((3, 4)),), {"axis": -1}),
        Case("axis-keepdims", (_normal((2, 5)),), {"axis": 1, "keepdims": True}),
    ],
    "exp": [Case("plain", (_normal((3, 4)),))],
    "log": [Case("positive", (_positive((3, 4)),))],
    "sqrt": [Case("positive", (_positive((3, 4)),))],
    "tanh": [Case("plain", (_normal((3, 4)),))],
    "relu": [Case("off-kink", (_away_from(_normal((3, 4)), [0.0]),))],
    "abs": [Case("off-kink", (_away_from(_normal((3, 4)), [0.0]),))],
    "clip": [
        Case(
            "interval",
            (_away_from(_normal((3, 4)), [-0.5, 0.5]),),
            {"lo": -0.5, "hi": 0.5},
        )
    ],
    "clip_ste": [
        Case(
            "straight-through",
            (_normal((3, 4)),),
            {"lo": -0.5, "hi": 0.5},
            surrogate=lambda a, lo, hi: a,
        )
    ],
    "round_ste": [
        Case(
            "straight-through",
            (_normal((3, 4)),),
            surrogate=lambda a: a,
        )
    ],
    "elementwise": [
        Case(
            "tanh-table",
            (_normal((3, 4)),),
            {"forward_fn": _smooth_table, "grad_fn": _smooth_table_slope},
        )
    ],
    "elementwise_fused": [
        Case("tanh-table", (_normal((3, 4)),), {"fused_fn": _fused_table})
    ],
    "unbroadcast": [
        Case("identity", (_normal((3, 4)),), {"shape": (3, 4)}),
        Case("sum-leading", (_normal((3, 4)),), {"shape": (4,)}),
        Case("sum-keepdims", (_normal((2, 3, 4)),), {"shape": (2, 1, 4)}),
        Case("to-scalar", (_normal((3, 4)),), {"shape": ()}),
    ],
}


def _forward_array(name: str, case: Case, arrays) -> np.ndarray:
    """The finite-difference target: the surrogate, or the op forward."""
    if case.surrogate is not None:
        return np.asarray(case.surrogate(*arrays, **case.params), dtype=np.float64)
    out, _ = ops.run_forward(ops.get_op(name), *arrays, **case.params)
    return np.asarray(out, dtype=np.float64)


def numerical_grads(name: str, case: Case, weight: np.ndarray):
    """Central-difference gradient of ``sum(forward * weight)`` per input."""
    grads = []
    for position, base in enumerate(case.inputs):
        grad = np.zeros_like(base, dtype=np.float64)
        flat = grad.reshape(-1)
        for i in range(base.size):
            arrays = [a.copy() for a in case.inputs]
            arrays[position].reshape(-1)[i] += EPS
            plus = float(np.sum(_forward_array(name, case, arrays) * weight))
            arrays[position].reshape(-1)[i] -= 2 * EPS
            minus = float(np.sum(_forward_array(name, case, arrays) * weight))
            flat[i] = (plus - minus) / (2 * EPS)
        grads.append(grad)
    return grads


def autograd_grads(name: str, case: Case, weight: np.ndarray):
    """Registered-VJP gradients through apply_op + backward, per input."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in case.inputs]
    out = apply_op(name, *tensors, **case.params)
    out.backward(weight)
    return [t.grad for t in tensors]


ALL_CASES = [
    pytest.param(name, case, id="%s-%s" % (name, case.label))
    for name in sorted(CASES)
    for case in CASES[name]
]


class TestRegistryGradcheck:
    def test_every_registered_op_has_cases(self):
        """Adding an op without a gradcheck case must fail the suite.

        ``vjp[...]`` wrapper ops are excluded: they are lazily-registered
        adapters around VJP functions the base-op cases already check, and
        are themselves registered non-differentiable (a second derivative
        would silently be wrong, so taking one raises instead).
        """
        registered = {
            name for name in ops.registered_ops() if not ops.is_vjp_op(name)
        }
        assert set(CASES) == registered
        assert all(CASES[name] for name in CASES)

    def test_binary_ops_include_broadcasting_cases(self):
        for name in ("add", "mul", "div"):
            shapes = {
                tuple(arr.shape for arr in case.inputs) for case in CASES[name]
            }
            assert any(a != b for a, b in shapes), name

    @pytest.mark.parametrize("name,case", ALL_CASES)
    def test_vjp_matches_finite_difference(self, name, case):
        out_shape = _forward_array(name, case, [a.copy() for a in case.inputs]).shape
        weight = _rng(99).standard_normal(out_shape)
        actual = autograd_grads(name, case, weight)
        expected = numerical_grads(name, case, weight)
        assert len(actual) == len(expected)
        for position, (got, want) in enumerate(zip(actual, expected)):
            assert got is not None, "input %d received no gradient" % position
            assert got.shape == case.inputs[position].shape
            np.testing.assert_allclose(
                got, want, atol=case.atol,
                err_msg="%s[%s] input %d" % (name, case.label, position),
            )


class TestCompositionGradcheck:
    """Spot checks of composed ops (the old tensor-level FD tests' role)."""

    @staticmethod
    def _check(fn, data, atol=1e-4):
        x = Tensor(data.copy(), requires_grad=True)
        fn(x).backward()
        grad = np.zeros_like(data)
        flat = grad.reshape(-1)
        for i in range(data.size):
            arr = data.copy()
            arr.reshape(-1)[i] += EPS
            plus = float(fn(Tensor(arr)).data)
            arr.reshape(-1)[i] -= 2 * EPS
            minus = float(fn(Tensor(arr)).data)
            flat[i] = (plus - minus) / (2 * EPS)
        np.testing.assert_allclose(x.grad, grad, atol=atol)

    def test_mean_and_var(self):
        self._check(lambda t: t.mean(), _normal((3, 4)))
        self._check(lambda t: t.mean(axis=1).sum(), _normal((3, 4), 1))
        self._check(lambda t: t.var(axis=-1).sum(), _normal((3, 4), 2), atol=1e-3)

    def test_softmax(self):
        from repro.nn import functional as F

        self._check(
            lambda t: (F.softmax(t) * Tensor(np.arange(4.0))).sum(), _normal((3, 4))
        )

    def test_gelu_layer_norm_chain(self):
        from repro.nn import functional as F

        weight, bias = Tensor(np.ones(4)), Tensor(np.zeros(4))
        self._check(
            lambda t: F.layer_norm(F.gelu(t), weight, bias).sum(),
            _normal((3, 4)),
            atol=1e-3,
        )


class TestFusedChainGradients:
    """The fuse_chains pass must not change gradients: a captured
    backward replayed through fused kernels equals both the unfused
    replay (bitwise) and the numerical derivative."""

    def _capture_grad_graph(self, x_val):
        from repro.graph import Tracer

        from repro.nn.tensor import tracing

        tracer = Tracer(capture_grads=True)
        x = Tensor(x_val.copy(), requires_grad=True)
        tracer.add_input(x)
        with tracing(tracer):
            ((x * 2.0).exp().tanh() + x).sum().backward()
        tracer.mark_output_vid(tracer.grad_vid(x))
        tracer.graph.validate()
        return tracer.graph

    def test_fused_backward_matches_unfused_and_finite_difference(self):
        from repro.graph import TRAIN_PASSES, CompiledGraph, optimize

        x_val = _normal((3, 4), seed=11) * 0.3
        graph = self._capture_grad_graph(x_val)
        fused = CompiledGraph(optimize(graph, TRAIN_PASSES))
        unfused = CompiledGraph(optimize(graph, ("fold", "fuse", "dce")))
        assert fused.num_steps < unfused.num_steps
        fused_grad = fused.run(x_val)[0]
        unfused_grad = unfused.run(x_val)[0]
        np.testing.assert_array_equal(fused_grad, unfused_grad)

        def f(arr):
            return np.sum(np.tanh(np.exp(arr * 2.0)) + arr)

        numerical = np.zeros_like(x_val)
        flat = numerical.reshape(-1)
        for i in range(x_val.size):
            bumped = x_val.copy().reshape(-1)
            bumped[i] += EPS
            up = f(bumped.reshape(x_val.shape))
            bumped[i] -= 2 * EPS
            down = f(bumped.reshape(x_val.shape))
            flat[i] = (up - down) / (2 * EPS)
        np.testing.assert_allclose(fused_grad, numerical, atol=ATOL)
