"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import default_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_chaos: sustained-load supervisor chaos scenarios; skipped "
        "unless REPRO_SLOW_CHAOS=1 (the CI chaos job sets it) so the "
        "tier-1 run stays fast",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_SLOW_CHAOS") == "1":
        return
    skip = pytest.mark.skip(
        reason="slow chaos scenario; set REPRO_SLOW_CHAOS=1 to run"
    )
    for item in items:
        if "slow_chaos" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def gelu_uniform_pwl():
    """An 8-entry uniform-breakpoint GELU pwl reused across tests."""
    fn = get_function("gelu")
    breakpoints = uniform_breakpoints(*fn.search_range, num_entries=8)
    return fit_pwl(fn.fn, breakpoints, fn.search_range)


@pytest.fixture(scope="session")
def quick_gelu_outcome():
    """A small GQA-LUT search outcome (GELU, 8 entries) shared by tests."""
    from repro.core.search import GQALUT

    return GQALUT.for_operator("gelu", num_entries=8, use_rm=True).search(
        generations=15, population_size=12, seed=0
    )
