"""Tests for the baseline approximation methods."""

import numpy as np
import pytest

from repro.baselines import (
    NNLUT,
    NNLUTTrainingConfig,
    IBertSoftmax,
    chebyshev_nodes,
    chebyshev_pwl,
    i_exp,
    i_gelu,
    i_rsqrt,
    i_sqrt,
    uniform_pwl,
)
from repro.functions.registry import get_function


@pytest.fixture(scope="module")
def trained_gelu_nnlut():
    nn = NNLUT(
        get_function("gelu"),
        num_entries=8,
        config=NNLUTTrainingConfig(num_samples=8000, iterations=1500, seed=0),
    )
    nn.train()
    return nn


class TestUniformAndChebyshev:
    def test_uniform_pwl_entry_count(self):
        pwl = uniform_pwl(get_function("gelu"), num_entries=8)
        assert pwl.num_entries == 8

    def test_chebyshev_nodes_sorted_and_bounded(self):
        nodes = chebyshev_nodes(-4, 4, 7)
        assert np.all(np.diff(nodes) > 0)
        assert nodes[0] > -4 and nodes[-1] < 4

    def test_chebyshev_nodes_validation(self):
        with pytest.raises(ValueError):
            chebyshev_nodes(-4, 4, 0)
        with pytest.raises(ValueError):
            chebyshev_nodes(4, -4, 3)

    def test_chebyshev_pwl_reasonable_accuracy(self):
        fn = get_function("exp")
        pwl = chebyshev_pwl(fn, num_entries=8)
        grid = fn.sample_grid(0.01)
        assert np.mean((pwl(grid) - fn(grid)) ** 2) < 1e-3

    def test_uniform_pwl_reasonable_accuracy(self):
        fn = get_function("gelu")
        pwl = uniform_pwl(fn, num_entries=8)
        grid = fn.sample_grid(0.01)
        assert np.mean((pwl(grid) - fn(grid)) ** 2) < 1e-3


class TestNNLUT:
    def test_network_is_piecewise_linear(self, trained_gelu_nnlut):
        """The extracted pwl must equal the network away from the kinks."""
        nn = trained_gelu_nnlut
        pwl = nn.extract_pwl()
        x = np.linspace(-3.9, 3.9, 257)
        # Exclude points within a small window of any breakpoint.
        mask = np.all(np.abs(x[:, None] - pwl.breakpoints[None, :]) > 1e-3, axis=1)
        np.testing.assert_allclose(pwl(x[mask]), nn.forward(x[mask]), atol=1e-9)

    def test_training_reduces_loss(self):
        nn = NNLUT(
            get_function("gelu"),
            num_entries=8,
            config=NNLUTTrainingConfig(num_samples=2000, iterations=300, seed=1),
        )
        x = np.linspace(-4, 4, 500)
        y = get_function("gelu")(x)
        before = float(np.mean((nn.forward(x) - y) ** 2))
        nn.train()
        after = float(np.mean((nn.forward(x) - y) ** 2))
        assert after < before

    def test_trained_approximation_accuracy(self, trained_gelu_nnlut):
        fn = get_function("gelu")
        pwl = trained_gelu_nnlut.extract_pwl()
        grid = fn.sample_grid(0.01)
        assert np.mean((pwl(grid) - fn(grid)) ** 2) < 2e-3

    def test_breakpoints_sorted_and_in_range(self, trained_gelu_nnlut):
        bp = trained_gelu_nnlut.breakpoints()
        assert np.all(np.diff(bp) >= 0)
        assert np.all(bp >= -4.0) and np.all(bp <= 4.0)

    def test_entry_count_matches_request(self, trained_gelu_nnlut):
        assert trained_gelu_nnlut.extract_pwl().num_entries == 8

    def test_fxp_extraction_rounds(self, trained_gelu_nnlut):
        fxp = trained_gelu_nnlut.extract_fxp_pwl(frac_bits=5)
        np.testing.assert_allclose(fxp.slopes * 32, np.round(fxp.slopes * 32))

    def test_fit_trains_once(self):
        nn = NNLUT(
            get_function("exp"),
            num_entries=4,
            config=NNLUTTrainingConfig(num_samples=1000, iterations=100, seed=0),
        )
        first = nn.fit()
        second = nn.fit()
        np.testing.assert_allclose(first.breakpoints, second.breakpoints)

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            NNLUT(get_function("gelu"), num_entries=1)


class TestIBert:
    def test_i_gelu_close_to_gelu(self):
        x = np.linspace(-4, 4, 101)
        reference = get_function("gelu")(x)
        assert np.max(np.abs(i_gelu(x) - reference)) < 0.03

    def test_i_exp_close_to_exp_on_softmax_domain(self):
        x = np.linspace(-8, 0, 101)
        assert np.max(np.abs(i_exp(x) - np.exp(x))) < 0.02

    def test_i_exp_clamps_positive_inputs(self):
        assert i_exp(3.0) == pytest.approx(i_exp(0.0))

    def test_i_sqrt_accuracy(self):
        x = np.linspace(0.01, 100, 200)
        np.testing.assert_allclose(i_sqrt(x, iterations=6), np.sqrt(x), rtol=1e-3)

    def test_i_sqrt_zero(self):
        assert i_sqrt(0.0) == pytest.approx(0.0)

    def test_i_sqrt_rejects_negative(self):
        with pytest.raises(ValueError):
            i_sqrt(-1.0)

    def test_i_rsqrt_accuracy(self):
        x = np.linspace(0.25, 64, 100)
        np.testing.assert_allclose(i_rsqrt(x, iterations=6), 1 / np.sqrt(x), rtol=1e-3)

    def test_ibert_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 10))
        probs = IBertSoftmax()(logits)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_ibert_softmax_close_to_exact(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 7)) * 3
        exact = np.exp(logits - logits.max(-1, keepdims=True))
        exact = exact / exact.sum(-1, keepdims=True)
        approx = IBertSoftmax()(logits)
        assert np.max(np.abs(approx - exact)) < 0.02


class TestNNLUTDeployment:
    """NN-LUT routed through the dense / legacy inference engines."""

    def test_deploy_engines_bit_identical_over_all_codes(self, trained_gelu_nnlut):
        import numpy as np

        from repro.core.lut import DenseLUT, QuantizedLUT

        scale = 2.0 ** -4
        dense = trained_gelu_nnlut.deploy(scale, engine="dense")
        legacy = trained_gelu_nnlut.deploy(scale, engine="legacy")
        assert isinstance(dense, DenseLUT)
        assert isinstance(legacy, QuantizedLUT)
        codes = np.arange(legacy.spec.qmin, legacy.spec.qmax + 1, dtype=np.float64)
        np.testing.assert_array_equal(
            dense.lookup_codes(codes), legacy.lookup_dequantized(codes)
        )
        x = np.linspace(-4.0, 4.0, 333)
        np.testing.assert_array_equal(dense(x), legacy(x))

    def test_deploy_trains_untrained_network(self):
        nn = NNLUT(
            get_function("gelu"),
            num_entries=8,
            config=NNLUTTrainingConfig(num_samples=500, iterations=20, seed=0),
        )
        assert not nn._trained
        dense = nn.deploy(0.25)
        assert nn._trained
        assert dense.num_codes == 256

    def test_deploy_rejects_unknown_engine(self, trained_gelu_nnlut):
        import pytest

        with pytest.raises(ValueError):
            trained_gelu_nnlut.deploy(0.25, engine="turbo")
