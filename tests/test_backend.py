"""Conformance and dispatch tests for the array-backend layer.

The contract: (1) NumPy satisfies the documented array surface; (2) the
``xp`` proxy forwards to the active backend, so switching backends
retargets every kernel module at once; (3) a module missing required
functions is rejected at registration, which is what makes alternates
drop-in — if it registers, the kernels can run on it.
"""

import types

import numpy as np
import pytest

from repro import backend
from repro.backend import (
    REQUIRED_ATTRS,
    available_backends,
    check_conformance,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
    xp,
)


class TestNumpyConformance:
    def test_numpy_is_registered_and_conformant(self):
        assert "numpy" in available_backends()
        check_conformance("numpy")

    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"
        assert get_backend().module is np

    def test_required_attrs_cover_dotted_names(self):
        assert "linalg.lstsq" in REQUIRED_ATTRS
        assert "add.at" in REQUIRED_ATTRS
        assert "random.default_rng" in REQUIRED_ATTRS


class TestProxyDispatch:
    def test_proxy_forwards_to_numpy(self):
        out = xp.asarray([1.0, 2.0])
        assert isinstance(out, np.ndarray)
        assert xp.float64 is np.float64

    def test_kernels_import_through_proxy_only(self):
        # The acceptance contract of the refactor: no kernel module in
        # nn/core/quant/scaling holds a direct numpy import.
        import pathlib

        src = pathlib.Path(backend.__file__).parent
        offenders = []
        for package in ("nn", "core", "quant", "scaling"):
            for path in (src / package).glob("*.py"):
                text = path.read_text()
                if "import numpy" in text:
                    offenders.append(str(path))
        assert offenders == []

    def test_switching_backend_retargets_proxy(self):
        # A shim backend that counts calls but delegates to numpy: the
        # cheapest possible "alternate backend" exercising the seam.
        calls = []

        class _Shim(types.ModuleType):
            def __getattr__(self, name):
                calls.append(name)
                return getattr(np, name)

        shim = _Shim("numpy_shim")
        register_backend("shim", shim)
        try:
            with use_backend("shim"):
                assert get_backend().name == "shim"
                xp.asarray([1.0])
            assert "asarray" in calls
            assert get_backend().name == "numpy"
        finally:
            set_backend("numpy")

    def test_tensor_ops_run_on_alternate_backend(self):
        from repro.nn.tensor import Tensor

        class _Shim(types.ModuleType):
            def __getattr__(self, name):
                return getattr(np, name)

        if "tensor-shim" not in available_backends():
            register_backend("tensor-shim", _Shim("tensor_shim"))
        with use_backend("tensor-shim"):
            x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
            (x.relu() * 2.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0.0, 2.0])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("torch")

    def test_nonconformant_module_rejected_at_registration(self):
        empty = types.ModuleType("empty_backend")
        with pytest.raises(ValueError, match="does not satisfy"):
            register_backend("empty", empty)
        assert "empty" not in available_backends()
