"""Tests for the quantization-aware evaluation protocol (Section 4.1)."""

import numpy as np
import pytest

from repro.core.evaluation import (
    DEFAULT_SCALES,
    QuantizedPWLEvaluator,
    evaluate_operator_mse,
    sweep_scaling_factors,
)
from repro.core.config import default_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.quant.quantizer import QuantSpec


@pytest.fixture(scope="module")
def gelu_fxp_pwl():
    fn = get_function("gelu")
    bp = uniform_breakpoints(*fn.search_range, num_entries=8)
    return fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)


@pytest.fixture(scope="module")
def exp_fxp_pwl():
    fn = get_function("exp")
    bp = uniform_breakpoints(*fn.search_range, num_entries=8)
    return fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)


class TestDefaultScales:
    def test_default_scales_are_2_pow_0_to_minus6(self):
        assert DEFAULT_SCALES == tuple(2.0 ** (-e) for e in range(7))


class TestEvaluator:
    def test_grid_restricted_to_search_range(self, gelu_fxp_pwl):
        evaluator = QuantizedPWLEvaluator(get_function("gelu"))
        codes, x = evaluator.grid_for_scale(1.0)
        assert x.min() >= -4.0 and x.max() <= 4.0
        # With S = 1 only the integer points of [-4, 4] remain.
        assert len(x) == 9

    def test_grid_step_equals_scale(self):
        evaluator = QuantizedPWLEvaluator(get_function("gelu"))
        _, x = evaluator.grid_for_scale(0.25)
        steps = np.unique(np.round(np.diff(x), 10))
        assert steps.tolist() == [0.25]

    def test_exp_grid_is_nonpositive(self):
        evaluator = QuantizedPWLEvaluator(get_function("exp"))
        _, x = evaluator.grid_for_scale(0.5)
        assert np.all(x <= 0.0)
        assert np.all(x >= -8.0)

    def test_mse_positive_and_finite(self, gelu_fxp_pwl):
        evaluator = QuantizedPWLEvaluator(get_function("gelu"))
        for scale in DEFAULT_SCALES:
            value = evaluator.mse_at_scale(gelu_fxp_pwl, scale)
            assert np.isfinite(value) and value >= 0

    def test_sweep_keys_match_scales(self, gelu_fxp_pwl):
        evaluator = QuantizedPWLEvaluator(get_function("gelu"))
        sweep = evaluator.sweep(gelu_fxp_pwl, scales=(0.5, 0.25))
        assert set(sweep) == {0.5, 0.25}

    def test_average_is_mean(self, gelu_fxp_pwl):
        evaluator = QuantizedPWLEvaluator(get_function("gelu"))
        sweep = evaluator.sweep(gelu_fxp_pwl)
        assert evaluator.average_mse(gelu_fxp_pwl) == pytest.approx(
            float(np.mean(list(sweep.values())))
        )

    def test_more_entries_reduce_error_at_small_scale(self):
        fn = get_function("gelu")
        evaluator = QuantizedPWLEvaluator(fn)
        errors = {}
        for entries in (4, 16):
            bp = uniform_breakpoints(*fn.search_range, num_entries=entries)
            pwl = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
            errors[entries] = evaluator.mse_at_scale(pwl, 2.0 ** -5)
        assert errors[16] < errors[4]

    def test_int16_more_accurate_than_int8(self, gelu_fxp_pwl):
        fn = get_function("gelu")
        int8 = QuantizedPWLEvaluator(fn, spec=QuantSpec(bits=8, signed=True), frac_bits=5)
        # INT16 deployment with more fractional bits.
        bp = gelu_fxp_pwl.breakpoints
        pwl16 = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(9)
        int16 = QuantizedPWLEvaluator(fn, spec=QuantSpec(bits=16, signed=True), frac_bits=9)
        assert int16.average_mse(pwl16) < int8.average_mse(gelu_fxp_pwl)

    def test_breakpoint_deviation_grows_with_scale(self):
        """Larger S quantizes breakpoints more coarsely (the Fig. 2b effect)."""
        from repro.core.lut import QuantizedLUT

        fn = get_function("exp")
        # Deliberately misaligned breakpoints (not on any power-of-two grid).
        bp = uniform_breakpoints(*fn.search_range, num_entries=8) + 0.37
        pwl = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
        deviations = {}
        for scale in (1.0, 2.0 ** -3):
            lut = QuantizedLUT(pwl=pwl, scale=scale, frac_bits=5)
            recovered = lut.quantized_breakpoints * scale
            deviations[scale] = float(np.max(np.abs(recovered - pwl.breakpoints)))
        assert deviations[1.0] > deviations[2.0 ** -3]

    def test_convenience_wrappers_agree(self, gelu_fxp_pwl):
        fn = get_function("gelu")
        direct = QuantizedPWLEvaluator(fn).mse_at_scale(gelu_fxp_pwl, 0.25)
        assert evaluate_operator_mse(fn, gelu_fxp_pwl, 0.25) == pytest.approx(direct)
        sweep = sweep_scaling_factors(fn, gelu_fxp_pwl, scales=(0.25,))
        assert sweep[0.25] == pytest.approx(direct)
