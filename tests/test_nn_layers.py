"""Tests for modules, layers, attention and quantized layers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.attention import LinearAttention, MultiHeadSelfAttention
from repro.nn.layers import (
    GELU,
    HSwish,
    MLP,
    DepthwiseConv2d,
    Dropout,
    LayerNorm,
    Linear,
    PatchEmbed,
    ReLU,
    Upsample,
)
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.quantization import (
    LSQQuantizer,
    PowerOfTwoQuantizer,
    QuantLinear,
    quantize_linears_in_place,
)
from repro.nn.tensor import Tensor
from repro.quant.power_of_two import is_power_of_two


class TestModuleSystem:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.child = Linear(2, 2)

        toy = Toy()
        names = dict(toy.named_parameters())
        assert "w" in names
        assert "child.weight" in names
        assert len(toy.parameters()) == 3  # w, child.weight, child.bias

    def test_state_dict_roundtrip(self):
        a = Linear(3, 4, rng=np.random.default_rng(0))
        b = Linear(3, 4, rng=np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(3, 4)
        b = Linear(3, 5)
        with pytest.raises((ValueError, KeyError)):
            b.load_state_dict(a.state_dict())

    def test_state_dict_roundtrip_preserves_dtype_without_aliasing(self):
        a = Linear(3, 4, rng=np.random.default_rng(0))
        state = a.state_dict()
        for value in state.values():
            assert value.dtype == np.float64
        b = Linear(3, 4, rng=np.random.default_rng(1))
        b.load_state_dict(state)
        for name, param in b.named_parameters():
            assert param.data.dtype == np.float64
            # Loaded arrays are copies: mutating the source dict afterwards
            # must not reach the module (and vice versa).
            assert param.data is not state[name]
            assert not np.shares_memory(param.data, state[name])
        state["weight"][:] = 0.0
        np.testing.assert_allclose(b.weight.data, a.weight.data)
        # state_dict() itself returns copies of the live parameters.
        snapshot = b.state_dict()
        snapshot["bias"][:] = 123.0
        assert not np.array_equal(b.bias.data, snapshot["bias"])

    def test_load_state_dict_strict_lists_missing_and_unexpected(self):
        model = Sequential(Linear(2, 3), Linear(3, 2))
        state = model.state_dict()
        del state["layer0.bias"]
        state["layer9.weight"] = np.zeros((2, 2))
        with pytest.raises(KeyError) as excinfo:
            model.load_state_dict(state)
        message = str(excinfo.value)
        assert "layer0.bias" in message  # missing
        assert "layer9.weight" in message  # unexpected
        assert "strict=False" in message

    def test_load_state_dict_non_strict_loads_intersection(self):
        source = Sequential(Linear(2, 3, rng=np.random.default_rng(2)))
        target = Sequential(Linear(2, 3, rng=np.random.default_rng(3)))
        state = source.state_dict()
        del state["layer0.bias"]  # missing: left at its current value
        state["extra.weight"] = np.ones(5)  # unexpected: ignored
        old_bias = target._modules["layer0"].bias.data.copy()
        target.load_state_dict(state, strict=False)
        np.testing.assert_array_equal(
            target._modules["layer0"].weight.data, source._modules["layer0"].weight.data
        )
        np.testing.assert_array_equal(target._modules["layer0"].bias.data, old_bias)

    def test_load_state_dict_non_strict_still_checks_shapes(self):
        model = Linear(2, 3)
        state = {"weight": np.zeros((9, 9))}
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state, strict=False)

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_sequential_applies_in_order(self):
        seq = Sequential(ReLU(), GELU())
        assert len(seq) == 2
        out = seq(Tensor(np.array([-1.0, 1.0])))
        assert out.data[0] == pytest.approx(0.0)


class TestLayers:
    def test_linear_shapes_and_grad(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 7, 5)))
        out = layer(x)
        assert out.shape == (2, 7, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (5, 3)
        assert layer.bias.grad.shape == (3,)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_layernorm_normalises(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 8)) * 5 + 2)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)

    def test_activation_modules(self):
        x = Tensor(np.linspace(-3, 3, 13))
        assert GELU()(x).shape == x.shape
        assert HSwish()(x).shape == x.shape
        assert np.all(ReLU()(x).data >= 0)

    def test_patch_embed_shapes(self):
        embed = PatchEmbed(3, 16, patch_size=4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).random((2, 16, 16, 3)))
        out = embed(x)
        assert out.shape == (2, 16, 16)  # (B, 4*4 patches, 16 dims)

    def test_patch_embed_rejects_indivisible(self):
        embed = PatchEmbed(3, 16, patch_size=5)
        with pytest.raises(ValueError):
            embed(Tensor(np.zeros((1, 16, 16, 3))))

    def test_patch_embed_preserves_patch_content(self):
        """Each token must depend only on its own patch."""
        embed = PatchEmbed(1, 4, patch_size=2, rng=np.random.default_rng(0))
        base = np.zeros((1, 4, 4, 1))
        modified = base.copy()
        modified[0, 2:, 2:, 0] = 1.0  # bottom-right patch only
        out_base = embed(Tensor(base)).data
        out_mod = embed(Tensor(modified)).data
        changed = np.any(np.abs(out_base - out_mod) > 1e-12, axis=-1)[0]
        assert changed.tolist() == [False, False, False, True]

    def test_depthwise_conv_shape_and_grad(self):
        conv = DepthwiseConv2d(3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).random((2, 6, 6, 3)), requires_grad=True)
        out = conv(x)
        assert out.shape == (2, 6, 6, 3)
        out.sum().backward()
        assert conv.weight.grad.shape == (3, 3, 3)
        assert x.grad.shape == x.shape

    def test_depthwise_conv_identity_kernel(self):
        conv = DepthwiseConv2d(2)
        conv.weight.data = np.zeros((3, 3, 2))
        conv.weight.data[1, 1, :] = 1.0  # centre tap only
        conv.bias.data = np.zeros(2)
        x = np.random.default_rng(0).random((1, 5, 5, 2))
        np.testing.assert_allclose(conv(Tensor(x)).data, x, atol=1e-12)

    def test_depthwise_conv_channel_mismatch(self):
        conv = DepthwiseConv2d(3)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 4, 4, 5))))

    def test_depthwise_conv_matches_direct_convolution(self):
        """The single-canvas scatter-sum must equal a literal 3x3 dw conv."""
        conv = DepthwiseConv2d(2, rng=np.random.default_rng(3))
        x = np.random.default_rng(4).standard_normal((2, 5, 6, 2))
        out = conv(Tensor(x)).data
        padded = np.zeros((2, 7, 8, 2))
        padded[:, 1:-1, 1:-1, :] = x
        expected = np.zeros_like(out)
        for ky in range(3):
            for kx in range(3):
                # Tap (dy+1, dx+1) shifts x *into* the destination, i.e.
                # out[y, x] += w[dy+1, dx+1] * x[y-dy, x-dx]: a convolution,
                # so the literal sliding-window form flips the kernel.
                expected += padded[:, ky:ky + 5, kx:kx + 6, :] * conv.weight.data[2 - ky, 2 - kx]
        expected += conv.bias.data
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_depthwise_conv_grad_matches_numeric(self):
        conv = DepthwiseConv2d(1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 4, 4, 1))

        def loss_for(weight):
            conv.weight.data = weight
            return float((conv(Tensor(x)).data ** 2).sum())

        base = conv.weight.data.copy()
        out = conv(Tensor(x))
        conv.zero_grad()
        (out * out).sum().backward()
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        for ky, kx in ((0, 0), (1, 1), (2, 0)):
            bumped = base.copy()
            bumped[ky, kx, 0] += eps
            numeric = (loss_for(bumped) - loss_for(base)) / eps
            assert analytic[ky, kx, 0] == pytest.approx(numeric, rel=1e-4)
        conv.weight.data = base

    def test_upsample_nearest(self):
        up = Upsample(2)
        x = np.arange(4).reshape(1, 2, 2, 1).astype(float)
        out = up(Tensor(x)).data
        assert out.shape == (1, 4, 4, 1)
        assert out[0, 0, 0, 0] == out[0, 1, 1, 0] == 0.0
        assert out[0, 2, 2, 0] == 3.0

    def test_upsample_matches_repeat_and_routes_grad(self):
        """One combined gather == np.repeat along both spatial axes."""
        x_data = np.random.default_rng(5).standard_normal((2, 3, 4, 2))
        x = Tensor(x_data, requires_grad=True)
        out = Upsample(3)(x)
        expected = np.repeat(np.repeat(x_data, 3, axis=1), 3, axis=2)
        np.testing.assert_array_equal(out.data, expected)
        out.sum().backward()
        # Every input element fans out to factor^2 outputs of weight one.
        np.testing.assert_allclose(x.grad, np.full(x_data.shape, 9.0))

    def test_upsample_factor_one_is_identity(self):
        x = Tensor(np.random.default_rng(0).random((1, 3, 3, 2)))
        assert Upsample(1)(x) is x

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_train_masks(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        assert np.any(out == 0.0)
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_mlp_shapes(self):
        mlp = MLP(8, 16, rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)


class TestAttention:
    def test_softmax_attention_shapes_and_grad(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 6, 8)), requires_grad=True)
        out = attn(x)
        assert out.shape == (2, 6, 8)
        out.sum().backward()
        assert x.grad.shape == x.shape

    def test_softmax_attention_hooks_are_used(self):
        calls = {"exp": 0, "recip": 0}

        def exp_hook(t):
            calls["exp"] += 1
            return t.exp()

        def recip_hook(t):
            calls["recip"] += 1
            return 1.0 / t

        attn = MultiHeadSelfAttention(4, num_heads=1, rng=np.random.default_rng(0),
                                      exp_fn=exp_hook, reciprocal_fn=recip_hook)
        attn(Tensor(np.random.default_rng(1).standard_normal((1, 3, 4))))
        assert calls["exp"] == 1 and calls["recip"] == 1

    def test_softmax_attention_rows_normalised(self):
        """With default hooks the attention weights must sum to one, which we
        verify indirectly: a constant value tensor must be reproduced."""
        attn = MultiHeadSelfAttention(4, num_heads=1, rng=np.random.default_rng(0))
        # Make V projection identity-ish by probing with constant values.
        x = Tensor(np.ones((1, 5, 4)))
        out = attn(x)
        # All tokens identical input -> all tokens identical output.
        assert np.allclose(out.data[0, 0], out.data[0, 1])

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(6, num_heads=4)
        with pytest.raises(ValueError):
            LinearAttention(6, num_heads=4)

    def test_linear_attention_shapes_and_grad(self):
        attn = LinearAttention(8, num_heads=2, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 6, 8)), requires_grad=True)
        out = attn(x)
        assert out.shape == (2, 6, 8)
        out.sum().backward()
        assert x.grad.shape == x.shape

    def test_linear_attention_reciprocal_hook(self):
        calls = {"recip": 0}

        def recip_hook(t):
            calls["recip"] += 1
            return 1.0 / t

        attn = LinearAttention(4, num_heads=1, rng=np.random.default_rng(0),
                               reciprocal_fn=recip_hook)
        attn(Tensor(np.random.default_rng(1).standard_normal((1, 3, 4))))
        assert calls["recip"] == 1


class TestQuantizationLayers:
    def test_lsq_initialises_from_first_batch(self):
        quant = LSQQuantizer(bits=8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 4)))
        quant(x)
        assert quant.initialised
        assert quant.current_scale() > 0

    def test_lsq_roundtrip_error_bounded(self):
        quant = LSQQuantizer(bits=8)
        x = np.random.default_rng(0).standard_normal((32, 32))
        out = quant(Tensor(x)).data
        assert np.max(np.abs(out - x)) < 4 * quant.current_scale()

    def test_lsq_scale_gets_gradient(self):
        quant = LSQQuantizer(bits=8)
        x = Tensor(np.random.default_rng(0).standard_normal((8, 8)))
        quant(x).sum().backward()
        assert quant.scale.grad is not None

    def test_power_of_two_quantizer_scale_is_power_of_two(self):
        quant = PowerOfTwoQuantizer(bits=8)
        x = Tensor(np.random.default_rng(0).standard_normal((16, 16)) * 0.7)
        quant(x)
        assert is_power_of_two(quant.current_scale())
        assert isinstance(quant.current_exponent(), int)

    def test_quant_linear_from_float_preserves_weights(self):
        linear = Linear(4, 3, rng=np.random.default_rng(0))
        quant = QuantLinear.from_float(linear)
        np.testing.assert_allclose(quant.weight.data, linear.weight.data)

    def test_quant_linear_output_close_to_float(self):
        rng = np.random.default_rng(0)
        linear = Linear(8, 8, rng=rng)
        quant = QuantLinear.from_float(linear)
        x = Tensor(rng.standard_normal((4, 8)))
        float_out = linear(x).data
        quant_out = quant(x).data
        assert np.max(np.abs(float_out - quant_out)) < 0.5

    def test_quantize_linears_in_place(self):
        model = Sequential(Linear(4, 4), GELU(), Linear(4, 2))
        replaced = quantize_linears_in_place(model)
        assert replaced == 2
        layers = list(model)
        # The Sequential keeps its original object list, but the registered
        # children are now QuantLinear.
        assert isinstance(model._modules["layer0"], QuantLinear)
        assert isinstance(model._modules["layer2"], QuantLinear)

    def test_quantize_linears_idempotent_on_quantlinear(self):
        model = Sequential(Linear(4, 4))
        quantize_linears_in_place(model)
        again = quantize_linears_in_place(model)
        assert again == 0
