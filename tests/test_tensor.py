"""Behavioural tests for the numpy autograd engine.

Per-op gradient correctness lives in ``tests/test_gradcheck.py``, which
finite-differences every op in the :mod:`repro.nn.ops` registry.  This file
covers the engine's *semantics*: forward arithmetic, graph control
(``no_grad`` / ``detach`` / graph release), gradient accumulation and the
``repro.nn.functional`` compositions the models are built from.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn import ops
from repro.nn.tensor import Tensor, concatenate, no_grad, ones, randn, tensor, zeros


class TestBasicOps:
    def test_add_mul_forward(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])
        np.testing.assert_allclose((a * b).data, [3.0, 8.0])

    def test_scalar_arithmetic(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1.0).data, [2.0, 3.0])
        np.testing.assert_allclose((2.0 * a).data, [2.0, 4.0])
        np.testing.assert_allclose((1.0 - a).data, [0.0, -1.0])
        np.testing.assert_allclose((a / 2.0).data, [0.5, 1.0])
        np.testing.assert_allclose((1.0 / a).data, [1.0, 0.5])

    def test_pow_rejects_non_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([1.0, 2.0])

    def test_batched_matmul_forward(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_broadcast_add_gradient(self):
        rng = np.random.default_rng(1)
        bias = Tensor(rng.standard_normal(4), requires_grad=True)
        x = Tensor(rng.standard_normal((3, 4)))
        out = (x + bias).sum()
        out.backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))

    def test_reused_tensor_accumulates_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        out = (x * x) + x
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_clip_ste_passes_gradient(self):
        x = Tensor([10.0, -10.0], requires_grad=True)
        x.clip_ste(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_round_ste_passes_gradient(self):
        x = Tensor([0.4, 0.6], requires_grad=True)
        x.round_ste().sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])
        np.testing.assert_allclose(x.round_ste().data, [0.0, 1.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        (x.reshape(2, 6) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 2.0))

    def test_swapaxes(self):
        x = Tensor(np.arange(24).reshape(2, 3, 4))
        assert x.swapaxes(1, 2).shape == (2, 4, 3)

    def test_concatenate_forward_and_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(2 * np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))


class TestReductions:
    def test_sum_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_var_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((4, 6))
        out = Tensor(data).var(axis=-1)
        np.testing.assert_allclose(out.data, data.var(axis=-1), atol=1e-12)

    def test_max_gradient_flows_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        x.max(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((5, 7)))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_gelu_close_to_exact(self):
        from repro.functions.nonlinear import gelu as exact_gelu

        x = np.linspace(-4, 4, 101)
        approx = F.gelu(Tensor(x)).data
        assert np.max(np.abs(approx - exact_gelu(x))) < 5e-3

    def test_hswish_matches_reference(self):
        from repro.functions.nonlinear import hswish as exact

        x = np.linspace(-5, 5, 101)
        np.testing.assert_allclose(F.hswish(Tensor(x)).data, exact(x), atol=1e-12)

    def test_layer_norm_statistics(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((4, 10)) * 3 + 1)
        out = F.layer_norm(x, Tensor(np.ones(10)), Tensor(np.zeros(10)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([0, 0])
        loss = F.cross_entropy(logits, targets)
        p0 = np.exp(2.0) / (np.exp(2.0) + 1.0)
        p1 = 1.0 / (np.exp(2.0) + 1.0)
        expected = -0.5 * (np.log(p0) + np.log(p1))
        assert loss.item() == pytest.approx(expected, abs=1e-9)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((3, 2)))
        targets = np.array([0, 1, 255])
        loss = F.cross_entropy(logits, targets, ignore_index=255)
        assert loss.item() == pytest.approx(np.log(2.0))

    def test_cross_entropy_all_ignored_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 2))), np.array([9, 9]), ignore_index=9)

    def test_lsq_quantize_forward_grid(self):
        x = Tensor(np.linspace(-2, 2, 9))
        scale = Tensor([0.5], requires_grad=True)
        out = F.lsq_quantize(x, scale, -4, 3)
        np.testing.assert_allclose(out.data, np.clip(np.round(x.data / 0.5), -4, 3) * 0.5)

    def test_lsq_scale_receives_gradient(self):
        x = Tensor(np.array([0.3, 1.7, -2.5]))
        scale = Tensor([0.5], requires_grad=True)
        F.lsq_quantize(x, scale, -4, 3).sum().backward()
        assert scale.grad is not None
        assert np.any(scale.grad != 0)

    def test_power_of_two_scale_snaps(self):
        alpha = Tensor([0.3], requires_grad=True)
        s = F.power_of_two_scale(alpha)
        assert s.data[0] == pytest.approx(0.25)
        s.backward()
        assert alpha.grad is not None


class TestGraphControl:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 3.0
        assert not y.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_constructors(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        assert randn((3, 3), rng=np.random.default_rng(0)).shape == (3, 3)
        assert tensor([1, 2]).shape == (2,)

    def test_unknown_op_rejected(self):
        from repro.nn.tensor import apply_op

        with pytest.raises(KeyError, match="unknown op"):
            apply_op("turbo_matmul", Tensor([1.0]))

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_linear_chain_gradient_matches_analytic(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        w = rng.standard_normal((n, m))
        x = Tensor(rng.standard_normal((4, n)), requires_grad=True)
        out = (x @ Tensor(w)).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.tile(w.sum(axis=1), (4, 1)), atol=1e-9)


class TestGraphRelease:
    """backward() drops graph references so intermediates can be freed."""

    def test_backward_releases_graph_edges(self):
        x = Tensor(np.ones(3), requires_grad=True)
        mid = (x * 2.0).exp()
        out = mid.sum()
        out.backward()
        assert out._backward is None and out._parents == ()
        assert mid._backward is None and mid._parents == ()

    def test_retain_graph_keeps_edges_and_allows_second_pass(self):
        x = Tensor(np.ones(3), requires_grad=True)
        out = (x * 3.0).sum()
        out.backward(retain_graph=True)
        assert out._backward is not None and out._parents != ()
        out.backward()  # second pass accumulates into .grad
        np.testing.assert_allclose(x.grad, np.full(3, 6.0))

    def test_released_graph_does_not_propagate_again(self):
        x = Tensor(np.ones(3), requires_grad=True)
        out = (x * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 3.0))
        # The default release cut the edges: a second backward from the
        # same root only touches the root itself.
        out.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 3.0))

    def test_intermediates_are_collectable_after_backward(self):
        import gc
        import weakref

        x = Tensor(np.ones(8), requires_grad=True)
        mid = (x * 2.0).tanh()
        ref = weakref.ref(mid)
        out = mid.sum()
        out.backward()
        del mid
        gc.collect()
        # `out` is still alive, but the released parent links no longer
        # pin the intermediate (pre-refactor this reference kept it alive).
        assert ref() is None

    def test_registry_is_the_only_gradient_source(self):
        # Every Tensor operation dispatches through the registry: the ops
        # module exposes the full table, and it is non-trivially populated.
        assert len(ops.registered_ops()) >= 20
