"""Resolution-order tests for the unified engine configuration.

The contract: every engine knob resolves **kwarg > context > env >
default**, the ``use`` context manager nests innermost-wins, and the
consumers (GeneticSearch, the pwl modules, NNLUT.deploy, SweepEngine)
actually route through it.
"""

import pytest

from repro.core import engine_config
from repro.core.engine_config import (
    ARTIFACT_DIR_ENV,
    GA_ENGINE_ENV,
    INFER_ENGINE_ENV,
    PWL_ENGINE_ENV,
    SWEEP_WORKERS_ENV,
    TRAIN_ENGINE_ENV,
    EngineConfig,
    current,
    resolve_artifact_dir,
    resolve_ga_engine,
    resolve_infer_engine,
    resolve_pwl_engine,
    resolve_sweep_workers,
    resolve_train_engine,
    use,
)


class TestDefaults:
    def test_defaults(self):
        config = current()
        assert config.ga_engine == "batch"
        assert config.pwl_engine == "dense"
        assert config.sweep_workers == 0
        assert config.artifact_dir is None
        assert config.infer_engine == "eager"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(ga_engine="turbo")
        with pytest.raises(ValueError):
            EngineConfig(pwl_engine="sparse")
        with pytest.raises(ValueError):
            EngineConfig(sweep_workers=-1)
        with pytest.raises(ValueError):
            EngineConfig(infer_engine="jit")
        with pytest.raises(ValueError):
            EngineConfig(train_engine="jit")

    def test_infer_engine_resolution_order(self, monkeypatch):
        monkeypatch.setenv(INFER_ENGINE_ENV, "compiled")
        assert resolve_infer_engine() == "compiled"
        with use(infer_engine="eager"):
            assert resolve_infer_engine() == "eager"
            assert resolve_infer_engine("compiled") == "compiled"
        with pytest.raises(ValueError):
            resolve_infer_engine("jit")

    def test_train_engine_defaults_to_eager(self):
        assert current().train_engine == "eager"
        assert resolve_train_engine() == "eager"

    def test_train_engine_resolution_order(self, monkeypatch):
        monkeypatch.setenv(TRAIN_ENGINE_ENV, "compiled")
        assert resolve_train_engine() == "compiled"
        with use(train_engine="eager"):
            assert resolve_train_engine() == "eager"
            assert resolve_train_engine("compiled") == "compiled"
        with pytest.raises(ValueError):
            resolve_train_engine("jit")

    def test_train_engine_independent_of_infer_engine(self, monkeypatch):
        monkeypatch.setenv(INFER_ENGINE_ENV, "compiled")
        assert resolve_train_engine() == "eager"
        with use(train_engine="compiled"):
            assert resolve_infer_engine() == "compiled"
            assert resolve_train_engine() == "compiled"


class TestResolutionOrder:
    def test_kwarg_beats_context(self):
        with use(ga_engine="legacy"):
            assert resolve_ga_engine("batch") == "batch"
            assert resolve_ga_engine() == "legacy"

    def test_context_beats_env(self, monkeypatch):
        monkeypatch.setenv(PWL_ENGINE_ENV, "legacy")
        assert resolve_pwl_engine() == "legacy"
        with use(pwl_engine="dense"):
            assert resolve_pwl_engine() == "dense"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(GA_ENGINE_ENV, "legacy")
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "3")
        monkeypatch.setenv(ARTIFACT_DIR_ENV, "/tmp/artifacts-here")
        config = current()
        assert config.ga_engine == "legacy"
        assert config.sweep_workers == 3
        assert config.artifact_dir == "/tmp/artifacts-here"

    def test_contexts_nest_innermost_wins(self):
        with use(ga_engine="legacy", sweep_workers=2):
            with use(ga_engine="batch"):
                assert resolve_ga_engine() == "batch"
                assert resolve_sweep_workers() == 2  # outer layer still applies
            assert resolve_ga_engine() == "legacy"
        assert resolve_ga_engine() == "batch"

    def test_use_validates_on_entry(self):
        with pytest.raises(ValueError):
            with use(pwl_engine="turbo"):
                pass  # pragma: no cover - never reached
        # The broken layer must not leak into later resolutions.
        assert resolve_pwl_engine() == "dense"

    def test_use_rejects_unknown_fields(self):
        with pytest.raises(TypeError, match="unknown engine-config field"):
            with use(engine="dense"):
                pass  # pragma: no cover - never reached

    def test_bad_env_worker_count_raises(self, monkeypatch):
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="integer worker count"):
            current()

    def test_artifact_dir_kwarg_override(self):
        assert resolve_artifact_dir("/tmp/override") == "/tmp/override"
        with use(artifact_dir="/tmp/ctx"):
            assert resolve_artifact_dir() == "/tmp/ctx"


class TestConsumers:
    def test_genetic_search_resolves_engine(self):
        from repro.core.genetic import GeneticSearch
        from repro.core.fitness import FitnessFunction

        class _Width(FitnessFunction):
            def __call__(self, breakpoints):
                return float(breakpoints[-1] - breakpoints[0])

        with use(ga_engine="legacy"):
            assert GeneticSearch(_Width(), (-1.0, 1.0)).engine == "legacy"
        assert GeneticSearch(_Width(), (-1.0, 1.0)).engine == "batch"
        assert GeneticSearch(_Width(), (-1.0, 1.0), engine="legacy").engine == "legacy"
        with pytest.raises(ValueError):
            GeneticSearch(_Width(), (-1.0, 1.0), engine="turbo")

    def test_pwl_modules_resolve_engine(self):
        from repro.core.pwl import fit_pwl, uniform_breakpoints
        from repro.functions.registry import get_function
        from repro.nn.approx import PWLActivation, PWLWideRange

        fn = get_function("gelu")
        pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, 8),
                      fn.search_range).to_fixed_point(5)
        with use(pwl_engine="legacy"):
            assert PWLActivation("gelu", pwl).engine == "legacy"
            assert PWLWideRange("div", pwl).engine == "legacy"
        assert PWLActivation("gelu", pwl).engine == "dense"
        assert PWLActivation("gelu", pwl, engine="legacy").engine == "legacy"

    def test_nnlut_deploy_resolves_engine(self):
        from repro.baselines.nn_lut import NNLUT, NNLUTTrainingConfig
        from repro.core.lut import DenseLUT, QuantizedLUT
        from repro.functions.registry import get_function

        nn = NNLUT(get_function("gelu"), num_entries=8,
                   config=NNLUTTrainingConfig(num_samples=500, iterations=30, seed=0))
        nn.train()
        assert isinstance(nn.deploy(0.25), DenseLUT)
        with use(pwl_engine="legacy"):
            assert isinstance(nn.deploy(0.25), QuantizedLUT)
        assert isinstance(nn.deploy(0.25, engine="legacy"), QuantizedLUT)

    def test_sweep_engine_resolves_workers(self):
        from repro.experiments.jobs import SweepEngine

        engine = SweepEngine()
        assert engine.workers is None  # re-resolved per run
        with use(sweep_workers=2):
            assert resolve_sweep_workers(engine.workers) == 2
        assert resolve_sweep_workers(engine.workers) == 0
        assert resolve_sweep_workers(4) == 4
