"""Engine contract for the fine-tuning stack: dense == legacy, bit for bit.

A seeded quantization-aware fine-tune at the ``FinetuneBudget.quick()``
budget must produce *identical* losses and validation mIoU whether the pwl
operators run on the dense-table engine or the legacy Fig. 1b pipeline —
the same contract PR 1 pinned for the genetic search engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.data.synthetic_segmentation import (
    SyntheticSegmentationConfig,
    SyntheticSegmentationDataset,
)
from repro.experiments.finetune import FinetuneBudget
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model

SEGFORMER_OPS = ("exp", "gelu", "div", "rsqrt")
EFFICIENTVIT_OPS = ("hswish", "div")


def _approximations(operators):
    out = {}
    for operator in operators:
        fn = get_function(operator)
        breakpoints = uniform_breakpoints(*fn.search_range, 8)
        out[operator] = fit_pwl(fn.fn, breakpoints, fn.search_range).to_fixed_point(5)
    return out


def _finetune(model_cls, operators, engine, budget, via_config=False):
    dataset = SyntheticSegmentationDataset(
        SyntheticSegmentationConfig(
            image_size=budget.image_size,
            num_classes=budget.num_classes,
            num_train=budget.num_train,
            num_val=budget.num_val,
            seed=budget.seed + 101,
        )
    )
    config = ModelConfig(
        image_size=budget.image_size,
        num_classes=budget.num_classes,
        embed_dim=budget.embed_dim,
        depth=budget.depth,
        seed=budget.seed,
    )
    if via_config:
        with engine_config.use(pwl_engine=engine):
            suite = PWLSuite(
                approximations=_approximations(operators),
                replace=set(operators),
            )
    else:
        suite = PWLSuite(
            approximations=_approximations(operators),
            replace=set(operators),
            engine=engine,
        )
    model = model_cls(config, suite=suite)
    prepare_quantized_model(model)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=budget.finetune_epochs,
            batch_size=budget.batch_size,
            learning_rate=budget.finetune_lr,
            seed=budget.seed,
        ),
    )
    return trainer.fit(
        dataset.train_images, dataset.train_labels,
        dataset.val_images, dataset.val_labels,
        num_classes=dataset.num_classes,
    )


class TestSeededEngineParity:
    @pytest.mark.parametrize(
        "model_cls,operators",
        [(MiniSegformer, SEGFORMER_OPS), (MiniEfficientViT, EFFICIENTVIT_OPS)],
    )
    def test_quick_finetune_identical_across_engines(self, model_cls, operators):
        budget = FinetuneBudget.quick()
        legacy = _finetune(model_cls, operators, "legacy", budget)
        dense = _finetune(model_cls, operators, "dense", budget)
        assert legacy.losses == dense.losses
        assert legacy.val_miou == dense.val_miou
        assert legacy.val_pixel_accuracy == dense.val_pixel_accuracy
        assert legacy.train_miou == dense.train_miou

    def test_config_resolved_engine_matches_explicit_kwarg(self):
        """engine_config.use(pwl_engine=...) == passing engine= explicitly."""
        budget = FinetuneBudget.quick()
        for engine in ("legacy", "dense"):
            explicit = _finetune(MiniEfficientViT, EFFICIENTVIT_OPS, engine, budget)
            via_config = _finetune(MiniEfficientViT, EFFICIENTVIT_OPS, engine, budget,
                                   via_config=True)
            assert explicit.losses == via_config.losses
            assert explicit.val_miou == via_config.val_miou

    def test_suite_resolves_engine_from_config(self):
        assert PWLSuite(approximations={}).engine == "dense"
        with engine_config.use(pwl_engine="legacy"):
            assert PWLSuite(approximations={}).engine == "legacy"
        assert PWLSuite(approximations={}, engine="legacy").engine == "legacy"

    def test_suite_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            PWLSuite(approximations={}, engine="turbo")


class TestTrainerEvaluateModeRestore:
    def _setup(self):
        budget = FinetuneBudget.quick()
        dataset = SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(
                image_size=budget.image_size,
                num_classes=budget.num_classes,
                num_train=8,
                num_val=4,
                seed=0,
            )
        )
        config = ModelConfig(
            image_size=budget.image_size,
            num_classes=budget.num_classes,
            embed_dim=budget.embed_dim,
            depth=budget.depth,
            seed=0,
        )
        from repro.nn.approx import FloatSuite

        model = MiniSegformer(config, suite=FloatSuite())
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=4, seed=0))
        return trainer, dataset

    def test_eval_mode_preserved(self):
        trainer, dataset = self._setup()
        trainer.model.eval()
        trainer.evaluate(dataset.val_images, dataset.val_labels, dataset.num_classes)
        assert not trainer.model.training
        assert all(not m.training for m in trainer.model.modules())

    def test_train_mode_preserved(self):
        trainer, dataset = self._setup()
        trainer.model.train()
        trainer.evaluate(dataset.val_images, dataset.val_labels, dataset.num_classes)
        assert trainer.model.training
