"""Tests for the traced graph IR, optimisation passes and compiled executor.

The load-bearing contract: compiled inference is **bit-identical** to the
eager forward for every model family and every pwl engine, across the
capture (tracer), optimize (DCE / constant folding / dense-LUT fusion /
buffer plan) and execute (CompiledGraph / CompiledModel) layers.
"""

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.lut import DenseLUT
from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.graph import (
    CompiledGraph,
    CompiledModel,
    Graph,
    Node,
    compile_model,
    dead_code_elimination,
    fold_constants,
    fuse_dense_lookups,
    optimize,
    plan_memory,
    trace,
)
from repro.nn.approx import PWLActivation, PWLSuite, PWLWideRange
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, no_grad
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model
from repro.quant.quantizer import QuantSpec


def build_approximation(operator: str, num_entries: int = 8) -> PiecewiseLinear:
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(5)


def small_config() -> ModelConfig:
    return ModelConfig(image_size=16, embed_dim=16, depth=1)


def build_pwl_model(model_cls, operators, engine: str):
    suite = PWLSuite(
        approximations={op: build_approximation(op) for op in operators},
        replace=set(operators),
        engine=engine,
    )
    model = model_cls(small_config(), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture
def images():
    return np.random.default_rng(0).normal(size=(2, 16, 16, 3))


class TestTracer:
    def test_captures_ops_constants_and_inputs(self):
        weight = Tensor(np.arange(6.0).reshape(2, 3))

        def fn(x):
            return (x @ weight).relu()

        x = np.random.default_rng(1).normal(size=(4, 2))
        graph = trace(fn, x)
        assert [node.op for node in graph.nodes] == ["matmul", "relu"]
        assert len(graph.inputs) == 1
        assert len(graph.outputs) == 1
        # The weight entered from outside the placeholder set -> constant.
        (const,) = graph.constants.values()
        np.testing.assert_array_equal(const, weight.data)

    def test_detach_aliases_value(self):
        def fn(x):
            shifted = x - x.max(axis=-1, keepdims=True).detach()
            return shifted.exp()

        x = np.random.default_rng(2).normal(size=(3, 4))
        graph = trace(fn, x)
        # The max output must flow into the subtraction, not be baked in as
        # a constant snapshot of the traced batch.
        ops = [node.op for node in graph.nodes]
        assert "max" in ops
        compiled = CompiledGraph(optimize(graph))
        other = np.random.default_rng(3).normal(size=(3, 4))
        expected = np.exp(other - other.max(axis=-1, keepdims=True))
        np.testing.assert_array_equal(compiled.run(other)[0], expected)

    def test_elementwise_name_becomes_label(self):
        def fn(x):
            return x.apply_elementwise(np.tanh, lambda d: 1 - np.tanh(d) ** 2,
                                       name="my-kernel")

        graph = trace(fn, np.zeros((2, 2)))
        assert graph.nodes[-1].label == "my-kernel"
        assert "my-kernel" in str(graph)

    def test_tracing_does_not_nest(self):
        def inner(x):
            return x + 1.0

        def outer(x):
            trace(inner, np.zeros(2))
            return x

        with pytest.raises(RuntimeError, match="does not nest"):
            trace(outer, np.zeros(2))

    def test_non_tensor_return_rejected(self):
        with pytest.raises(TypeError):
            trace(lambda x: x.numpy(), np.zeros(2))

    def test_validate_rejects_undefined_values(self):
        graph = Graph()
        vid = graph.new_value()
        graph.inputs.append(vid)
        out = graph.new_value()
        graph.nodes.append(Node(op="add", inputs=(vid, 99), output=out))
        graph.outputs.append(out)
        with pytest.raises(ValueError, match="undefined value"):
            graph.validate()


class TestPasses:
    def test_dead_code_elimination_drops_unused_chain(self):
        def fn(x):
            unused = (x * 2.0).exp()  # noqa: F841 -- traced but dead
            return x + 1.0

        graph = trace(fn, np.zeros((2, 2)))
        before = [node.op for node in graph.nodes]
        assert "exp" in before
        pruned = dead_code_elimination(graph)
        after = [node.op for node in pruned.nodes]
        assert "exp" not in after and "mul" not in after
        # The dead chain's lifted scalar constants disappear with it.
        assert len(pruned.constants) < len(graph.constants)

    def test_constant_folding_collapses_parameter_subtree(self):
        class Model(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.arange(4.0) + 1.0)

            def forward(self, x):
                # abs -> log -> exp over parameters only: foldable.
                return x * self.weight.abs().log().exp()

        model = Model()
        x = np.full((3, 4), 2.0)
        graph = trace(model, x)
        assert len(graph.nodes) == 4  # abs, log, exp, mul
        folded = dead_code_elimination(fold_constants(graph))
        assert [node.op for node in folded.nodes] == ["mul"]
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_array_equal(CompiledGraph(folded).run(x)[0], expected)

    def test_fusion_rewrites_dense_lut_dispatch(self):
        module = PWLActivation("gelu", build_approximation("gelu"), engine="dense")
        x = np.random.default_rng(4).normal(size=(5, 7))
        with no_grad():
            eager = module(Tensor(x)).data
        graph = trace(module, x)
        assert any(node.op == "elementwise_fused" for node in graph.nodes)
        fused = fuse_dense_lookups(graph)
        kinds = [node.op for node in fused.nodes]
        assert "dense_lookup" in kinds and "elementwise_fused" not in kinds
        (node,) = [n for n in fused.nodes if n.op == "dense_lookup"]
        assert isinstance(node.params["table"], DenseLUT)
        assert node.label == "pwl[gelu]"
        np.testing.assert_array_equal(CompiledGraph(fused).run(x)[0], eager)

    def test_fusion_rewrites_multirange_dispatch(self):
        module = PWLWideRange("rsqrt", build_approximation("rsqrt"), engine="dense")
        x = np.abs(np.random.default_rng(5).normal(size=(4, 4))) * 200 + 0.5
        with no_grad():
            eager = module(Tensor(x)).data
        fused = fuse_dense_lookups(trace(module, x))
        assert any(node.op == "multirange_lookup" for node in fused.nodes)
        np.testing.assert_array_equal(CompiledGraph(fused).run(x)[0], eager)

    def test_legacy_engine_is_not_fused(self):
        module = PWLActivation("gelu", build_approximation("gelu"), engine="legacy")
        x = np.random.default_rng(6).normal(size=(3, 3))
        with no_grad():
            module(Tensor(x))
        fused = fuse_dense_lookups(trace(module, x))
        assert all(node.op not in ("dense_lookup", "multirange_lookup")
                   for node in fused.nodes)


class TestMemoryPlan:
    def test_slots_are_reused_after_last_use(self):
        def fn(x):
            y = x.exp()
            z = y.tanh()
            return z.relu()

        graph = trace(fn, np.zeros((2, 2)))
        plan = plan_memory(graph)
        dynamic = plan.num_slots - len(plan.constant_slots)
        # Four dynamic values (input + three intermediates) share slots: at
        # most two live at once in a straight chain, so freed slots must be
        # reused instead of growing the environment.
        assert plan.peak_live == 2
        assert dynamic == 2

    def test_outputs_and_constants_never_released(self):
        weight = Tensor(np.ones((2, 2)))

        def fn(x):
            return x @ weight

        graph = trace(fn, np.zeros((3, 2)))
        plan = plan_memory(graph)
        released = {slot for slots in plan.releases for slot in slots}
        assert not released & set(plan.constant_slots.values())
        for vid in graph.outputs:
            assert plan.slots[vid] not in released

    def test_buffer_reuse_is_safe_for_aliased_views(self):
        """Releasing a buffer whose views outlive it must not corrupt them.

        ``reshape``/``transpose`` return numpy views sharing the base
        buffer; the plan releases the base's slot after its last *graph*
        use while the views are still pending.  Refcounting must keep the
        storage alive, so compiled outputs stay bit-identical.
        """

        def fn(x):
            base = x * 3.0
            view_a = base.reshape(4, 2)        # view of base
            view_b = base.transpose(1, 0)      # second view of base
            # base's slot is released here (last direct use), while both
            # views flow on to later nodes and the output.
            return view_a.reshape(2, 4) + view_b.transpose(1, 0)

        x = np.random.default_rng(7).normal(size=(2, 4))
        graph = optimize(trace(fn, x))
        plan = plan_memory(graph)
        assert any(plan.releases)  # the plan does release something
        with no_grad():
            expected = fn(Tensor(x)).data
        np.testing.assert_array_equal(CompiledGraph(graph).run(x)[0], expected)


class TestCompiledModel:
    @pytest.mark.parametrize("model_cls,operators", [
        (MiniSegformer, ("exp", "gelu", "div", "rsqrt")),
        (MiniEfficientViT, ("hswish", "div")),
    ])
    @pytest.mark.parametrize("pwl_engine", ["dense", "legacy"])
    def test_compiled_bit_identical_to_eager(self, model_cls, operators,
                                             pwl_engine, images):
        model = build_pwl_model(model_cls, operators, pwl_engine)
        eager = model.predict(images, engine="eager")
        compiled = model.predict(images, engine="compiled")
        np.testing.assert_array_equal(compiled, eager)

    def test_float_model_compiled_parity(self, images):
        model = MiniSegformer(small_config())
        np.testing.assert_array_equal(
            model.predict(images, engine="compiled"),
            model.predict(images, engine="eager"),
        )

    def test_shape_specialisation_cache(self, images):
        model = MiniSegformer(small_config())
        compiled = compile_model(model)
        compiled.predict(images)
        compiled.predict(images)
        assert compiled.compile_count == 1
        compiled.predict(images[:1])
        assert compiled.compile_count == 2
        assert compiled.specializations == 2

    def test_parameter_rebinding_invalidates_cache(self, images):
        model = MiniSegformer(small_config())
        compiled = compile_model(model)
        stale = compiled.predict(images)
        # Mimic an optimiser step: rebind every parameter's data.
        for param in model.parameters():
            param.data = param.data + 0.05
        fresh = compiled.predict(images)
        assert compiled.compile_count == 2
        np.testing.assert_array_equal(fresh, model.predict(images, engine="eager"))
        assert not np.array_equal(stale, fresh)  # weights actually moved

    def test_engine_config_context_selects_compiled(self, images):
        model = MiniSegformer(small_config())
        eager = model.predict(images)  # default engine
        with engine_config.use(infer_engine="compiled"):
            compiled = model.predict(images)
        assert model._compiled_model is not None
        assert model._compiled_model.compile_count == 1
        np.testing.assert_array_equal(compiled, eager)

    def test_trainer_evaluate_compiled_parity(self):
        rng = np.random.default_rng(11)
        images = rng.normal(size=(10, 16, 16, 3))
        labels = rng.integers(0, 5, size=(10, 16, 16))
        model = build_pwl_model(MiniSegformer, ("exp", "gelu", "div", "rsqrt"), "dense")
        trainer = Trainer(model, TrainingConfig(batch_size=4))
        eager = trainer.evaluate(images, labels, 5, engine="eager")
        compiled = trainer.evaluate(images, labels, 5, engine="compiled")
        assert eager == compiled

    def test_batch_size_invariant_predictions(self, images):
        """Serving precondition: row k of a batch equals a solo forward."""
        model = build_pwl_model(MiniSegformer, ("exp", "gelu", "div", "rsqrt"), "dense")
        batched = model.predict(images, engine="compiled")
        for index in range(images.shape[0]):
            solo = model.predict(images[index:index + 1], engine="compiled")
            np.testing.assert_array_equal(solo[0], batched[index])

    def test_wrong_input_arity_raises(self, images):
        model = MiniSegformer(small_config())
        compiled_graph = CompiledGraph(optimize(trace(model, images)))
        with pytest.raises(ValueError, match="expects 1 input"):
            compiled_graph.run(images, images)


class TestNNLUTInferEngine:
    def test_compiled_infer_engine_forces_dense_table(self):
        from repro.baselines.nn_lut import NNLUT, NNLUTTrainingConfig
        from repro.core.lut import QuantizedLUT

        nn_lut = NNLUT(
            get_function("gelu"),
            config=NNLUTTrainingConfig(num_samples=2000, iterations=50),
        )
        legacy = nn_lut.deploy(scale=2.0 ** -4, engine="legacy")
        assert isinstance(legacy, QuantizedLUT)
        # Unspecified pwl engine + compiled serving -> dense table, even
        # when the ambient pwl engine would resolve to legacy.
        with engine_config.use(pwl_engine="legacy"):
            compiled = nn_lut.deploy(scale=2.0 ** -4, infer_engine="compiled")
        assert isinstance(compiled, DenseLUT)
        # An explicit engine kwarg always wins over the infer engine.
        explicit = nn_lut.deploy(
            scale=2.0 ** -4, engine="legacy", infer_engine="compiled"
        )
        assert isinstance(explicit, QuantizedLUT)
        codes = np.arange(QuantSpec(bits=8, signed=True).qmin,
                          QuantSpec(bits=8, signed=True).qmax + 1)
        np.testing.assert_array_equal(
            compiled.lookup_codes(codes), legacy.lookup_dequantized(codes)
        )
