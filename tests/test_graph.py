"""Tests for the traced graph IR, optimisation passes and compiled executor.

The load-bearing contract: compiled inference is **bit-identical** to the
eager forward for every model family and every pwl engine, across the
capture (tracer), optimize (DCE / constant folding / dense-LUT fusion /
buffer plan) and execute (CompiledGraph / CompiledModel) layers.
"""

import numpy as np
import pytest

from repro.core import engine_config
from repro.core.lut import DenseLUT
from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.graph import (
    TRAIN_PASSES,
    CompiledGraph,
    CompiledModel,
    CompiledTrainStep,
    Graph,
    Node,
    Tracer,
    compile_model,
    dead_code_elimination,
    fold_constants,
    fuse_dense_lookups,
    fuse_elementwise_chains,
    optimize,
    plan_memory,
    trace,
)
from repro.nn import functional as F
from repro.nn.approx import FloatSuite, PWLActivation, PWLSuite, PWLWideRange
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.tensor import Tensor, no_grad, tracing
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model
from repro.quant.quantizer import QuantSpec


def build_approximation(operator: str, num_entries: int = 8) -> PiecewiseLinear:
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(5)


def small_config() -> ModelConfig:
    return ModelConfig(image_size=16, embed_dim=16, depth=1)


def build_pwl_model(model_cls, operators, engine: str):
    suite = PWLSuite(
        approximations={op: build_approximation(op) for op in operators},
        replace=set(operators),
        engine=engine,
    )
    model = model_cls(small_config(), suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


@pytest.fixture
def images():
    return np.random.default_rng(0).normal(size=(2, 16, 16, 3))


class TestTracer:
    def test_captures_ops_constants_and_inputs(self):
        weight = Tensor(np.arange(6.0).reshape(2, 3))

        def fn(x):
            return (x @ weight).relu()

        x = np.random.default_rng(1).normal(size=(4, 2))
        graph = trace(fn, x)
        assert [node.op for node in graph.nodes] == ["matmul", "relu"]
        assert len(graph.inputs) == 1
        assert len(graph.outputs) == 1
        # The weight entered from outside the placeholder set -> constant.
        (const,) = graph.constants.values()
        np.testing.assert_array_equal(const, weight.data)

    def test_detach_aliases_value(self):
        def fn(x):
            shifted = x - x.max(axis=-1, keepdims=True).detach()
            return shifted.exp()

        x = np.random.default_rng(2).normal(size=(3, 4))
        graph = trace(fn, x)
        # The max output must flow into the subtraction, not be baked in as
        # a constant snapshot of the traced batch.
        ops = [node.op for node in graph.nodes]
        assert "max" in ops
        compiled = CompiledGraph(optimize(graph))
        other = np.random.default_rng(3).normal(size=(3, 4))
        expected = np.exp(other - other.max(axis=-1, keepdims=True))
        np.testing.assert_array_equal(compiled.run(other)[0], expected)

    def test_elementwise_name_becomes_label(self):
        def fn(x):
            return x.apply_elementwise(np.tanh, lambda d: 1 - np.tanh(d) ** 2,
                                       name="my-kernel")

        graph = trace(fn, np.zeros((2, 2)))
        assert graph.nodes[-1].label == "my-kernel"
        assert "my-kernel" in str(graph)

    def test_tracing_does_not_nest(self):
        def inner(x):
            return x + 1.0

        def outer(x):
            trace(inner, np.zeros(2))
            return x

        with pytest.raises(RuntimeError, match="does not nest"):
            trace(outer, np.zeros(2))

    def test_non_tensor_return_rejected(self):
        with pytest.raises(TypeError):
            trace(lambda x: x.numpy(), np.zeros(2))

    def test_validate_rejects_undefined_values(self):
        graph = Graph()
        vid = graph.new_value()
        graph.inputs.append(vid)
        out = graph.new_value()
        graph.nodes.append(Node(op="add", inputs=(vid, 99), output=out))
        graph.outputs.append(out)
        with pytest.raises(ValueError, match="undefined value"):
            graph.validate()


class TestPasses:
    def test_dead_code_elimination_drops_unused_chain(self):
        def fn(x):
            unused = (x * 2.0).exp()  # noqa: F841 -- traced but dead
            return x + 1.0

        graph = trace(fn, np.zeros((2, 2)))
        before = [node.op for node in graph.nodes]
        assert "exp" in before
        pruned = dead_code_elimination(graph)
        after = [node.op for node in pruned.nodes]
        assert "exp" not in after and "mul" not in after
        # The dead chain's lifted scalar constants disappear with it.
        assert len(pruned.constants) < len(graph.constants)

    def test_constant_folding_collapses_parameter_subtree(self):
        class Model(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.arange(4.0) + 1.0)

            def forward(self, x):
                # abs -> log -> exp over parameters only: foldable.
                return x * self.weight.abs().log().exp()

        model = Model()
        x = np.full((3, 4), 2.0)
        graph = trace(model, x)
        assert len(graph.nodes) == 4  # abs, log, exp, mul
        folded = dead_code_elimination(fold_constants(graph))
        assert [node.op for node in folded.nodes] == ["mul"]
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_array_equal(CompiledGraph(folded).run(x)[0], expected)

    def test_fusion_rewrites_dense_lut_dispatch(self):
        module = PWLActivation("gelu", build_approximation("gelu"), engine="dense")
        x = np.random.default_rng(4).normal(size=(5, 7))
        with no_grad():
            eager = module(Tensor(x)).data
        graph = trace(module, x)
        assert any(node.op == "elementwise_fused" for node in graph.nodes)
        fused = fuse_dense_lookups(graph)
        kinds = [node.op for node in fused.nodes]
        assert "dense_lookup" in kinds and "elementwise_fused" not in kinds
        (node,) = [n for n in fused.nodes if n.op == "dense_lookup"]
        assert isinstance(node.params["table"], DenseLUT)
        assert node.label == "pwl[gelu]"
        np.testing.assert_array_equal(CompiledGraph(fused).run(x)[0], eager)

    def test_fusion_rewrites_multirange_dispatch(self):
        module = PWLWideRange("rsqrt", build_approximation("rsqrt"), engine="dense")
        x = np.abs(np.random.default_rng(5).normal(size=(4, 4))) * 200 + 0.5
        with no_grad():
            eager = module(Tensor(x)).data
        fused = fuse_dense_lookups(trace(module, x))
        assert any(node.op == "multirange_lookup" for node in fused.nodes)
        np.testing.assert_array_equal(CompiledGraph(fused).run(x)[0], eager)

    def test_legacy_engine_is_not_fused(self):
        module = PWLActivation("gelu", build_approximation("gelu"), engine="legacy")
        x = np.random.default_rng(6).normal(size=(3, 3))
        with no_grad():
            module(Tensor(x))
        fused = fuse_dense_lookups(trace(module, x))
        assert all(node.op not in ("dense_lookup", "multirange_lookup")
                   for node in fused.nodes)


class TestMemoryPlan:
    def test_slots_are_reused_after_last_use(self):
        def fn(x):
            y = x.exp()
            z = y.tanh()
            return z.relu()

        graph = trace(fn, np.zeros((2, 2)))
        plan = plan_memory(graph)
        dynamic = plan.num_slots - len(plan.constant_slots)
        # Four dynamic values (input + three intermediates) share slots: at
        # most two live at once in a straight chain, so freed slots must be
        # reused instead of growing the environment.
        assert plan.peak_live == 2
        assert dynamic == 2

    def test_outputs_and_constants_never_released(self):
        weight = Tensor(np.ones((2, 2)))

        def fn(x):
            return x @ weight

        graph = trace(fn, np.zeros((3, 2)))
        plan = plan_memory(graph)
        released = {slot for slots in plan.releases for slot in slots}
        assert not released & set(plan.constant_slots.values())
        for vid in graph.outputs:
            assert plan.slots[vid] not in released

    def test_buffer_reuse_is_safe_for_aliased_views(self):
        """Releasing a buffer whose views outlive it must not corrupt them.

        ``reshape``/``transpose`` return numpy views sharing the base
        buffer; the plan releases the base's slot after its last *graph*
        use while the views are still pending.  Refcounting must keep the
        storage alive, so compiled outputs stay bit-identical.
        """

        def fn(x):
            base = x * 3.0
            view_a = base.reshape(4, 2)        # view of base
            view_b = base.transpose(1, 0)      # second view of base
            # base's slot is released here (last direct use), while both
            # views flow on to later nodes and the output.
            return view_a.reshape(2, 4) + view_b.transpose(1, 0)

        x = np.random.default_rng(7).normal(size=(2, 4))
        graph = optimize(trace(fn, x))
        plan = plan_memory(graph)
        assert any(plan.releases)  # the plan does release something
        with no_grad():
            expected = fn(Tensor(x)).data
        np.testing.assert_array_equal(CompiledGraph(graph).run(x)[0], expected)


class TestCompiledModel:
    @pytest.mark.parametrize("model_cls,operators", [
        (MiniSegformer, ("exp", "gelu", "div", "rsqrt")),
        (MiniEfficientViT, ("hswish", "div")),
    ])
    @pytest.mark.parametrize("pwl_engine", ["dense", "legacy"])
    def test_compiled_bit_identical_to_eager(self, model_cls, operators,
                                             pwl_engine, images):
        model = build_pwl_model(model_cls, operators, pwl_engine)
        eager = model.predict(images, engine="eager")
        compiled = model.predict(images, engine="compiled")
        np.testing.assert_array_equal(compiled, eager)

    def test_float_model_compiled_parity(self, images):
        model = MiniSegformer(small_config())
        np.testing.assert_array_equal(
            model.predict(images, engine="compiled"),
            model.predict(images, engine="eager"),
        )

    def test_shape_specialisation_cache(self, images):
        model = MiniSegformer(small_config())
        compiled = compile_model(model)
        compiled.predict(images)
        compiled.predict(images)
        assert compiled.compile_count == 1
        compiled.predict(images[:1])
        assert compiled.compile_count == 2
        assert compiled.specializations == 2

    def test_parameter_rebinding_invalidates_cache(self, images):
        model = MiniSegformer(small_config())
        compiled = compile_model(model)
        stale = compiled.predict(images)
        # Mimic an optimiser step: rebind every parameter's data.
        for param in model.parameters():
            param.data = param.data + 0.05
        fresh = compiled.predict(images)
        assert compiled.compile_count == 2
        np.testing.assert_array_equal(fresh, model.predict(images, engine="eager"))
        assert not np.array_equal(stale, fresh)  # weights actually moved

    def test_engine_config_context_selects_compiled(self, images):
        model = MiniSegformer(small_config())
        eager = model.predict(images)  # default engine
        with engine_config.use(infer_engine="compiled"):
            compiled = model.predict(images)
        assert model._compiled_model is not None
        assert model._compiled_model.compile_count == 1
        np.testing.assert_array_equal(compiled, eager)

    def test_trainer_evaluate_compiled_parity(self):
        rng = np.random.default_rng(11)
        images = rng.normal(size=(10, 16, 16, 3))
        labels = rng.integers(0, 5, size=(10, 16, 16))
        model = build_pwl_model(MiniSegformer, ("exp", "gelu", "div", "rsqrt"), "dense")
        trainer = Trainer(model, TrainingConfig(batch_size=4))
        eager = trainer.evaluate(images, labels, 5, engine="eager")
        compiled = trainer.evaluate(images, labels, 5, engine="compiled")
        assert eager == compiled

    def test_batch_size_invariant_predictions(self, images):
        """Serving precondition: row k of a batch equals a solo forward."""
        model = build_pwl_model(MiniSegformer, ("exp", "gelu", "div", "rsqrt"), "dense")
        batched = model.predict(images, engine="compiled")
        for index in range(images.shape[0]):
            solo = model.predict(images[index:index + 1], engine="compiled")
            np.testing.assert_array_equal(solo[0], batched[index])

    def test_wrong_input_arity_raises(self, images):
        model = MiniSegformer(small_config())
        compiled_graph = CompiledGraph(optimize(trace(model, images)))
        with pytest.raises(ValueError, match="expects 1 input"):
            compiled_graph.run(images, images)


class TestNNLUTInferEngine:
    def test_compiled_infer_engine_forces_dense_table(self):
        from repro.baselines.nn_lut import NNLUT, NNLUTTrainingConfig
        from repro.core.lut import QuantizedLUT

        nn_lut = NNLUT(
            get_function("gelu"),
            config=NNLUTTrainingConfig(num_samples=2000, iterations=50),
        )
        legacy = nn_lut.deploy(scale=2.0 ** -4, engine="legacy")
        assert isinstance(legacy, QuantizedLUT)
        # Unspecified pwl engine + compiled serving -> dense table, even
        # when the ambient pwl engine would resolve to legacy.
        with engine_config.use(pwl_engine="legacy"):
            compiled = nn_lut.deploy(scale=2.0 ** -4, infer_engine="compiled")
        assert isinstance(compiled, DenseLUT)
        # An explicit engine kwarg always wins over the infer engine.
        explicit = nn_lut.deploy(
            scale=2.0 ** -4, engine="legacy", infer_engine="compiled"
        )
        assert isinstance(explicit, QuantizedLUT)
        codes = np.arange(QuantSpec(bits=8, signed=True).qmin,
                          QuantSpec(bits=8, signed=True).qmax + 1)
        np.testing.assert_array_equal(
            compiled.lookup_codes(codes), legacy.lookup_dequantized(codes)
        )


# -- compiled training (PR 9) ----------------------------------------------------


class _TinyTrainNet(Module):
    """Two-parameter net whose training step exercises matmul, broadcast
    bias, an elementwise nonlinearity and the softmax-CE loss."""

    def __init__(self, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Parameter(rng.normal(size=(2, 3)))
        self.bias = Parameter(np.zeros(3))

    def forward(self, x):
        return ((x @ self.weight) + self.bias).tanh()


def _tiny_batch(seed: int = 1, batch: int = 4):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, 2)), rng.integers(0, 3, size=(batch,))


def _eager_train_steps(model, optimizer, schedule, batches):
    """The exact Trainer.fit eager loop body, as a parity reference."""
    model.train()
    losses = []
    for images, labels in batches:
        logits = model(Tensor(images))
        loss = F.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if schedule is not None:
            schedule.step()
        losses.append(loss.item())
    return losses


def _optim_buffers(optimizer):
    out = {}
    for group in ("_velocity", "_m", "_v"):
        buffers = getattr(optimizer, group, None)
        if buffers is not None:
            out[group] = [np.asarray(buffer).copy() for buffer in buffers]
    return out


class TestBackwardCapture:
    def test_backward_emits_vjp_nodes_and_grad_vid(self):
        tracer = Tracer(capture_grads=True)
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        tracer.add_input(x)
        with tracing(tracer):
            y = (x.exp() * 3.0).sum()
            y.backward()
        grad_vid = tracer.grad_vid(x)
        assert grad_vid is not None
        ops = [node.op for node in tracer.graph.nodes]
        # The backward traversal was recorded: sum's VJP goes through its
        # lazily-registered wrapper, exp's VJP lowers to a plain mul.
        assert "vjp[sum][0]" in ops
        assert ops.count("mul") >= 2

    def test_captured_gradient_replays_bitwise(self):
        tracer = Tracer(capture_grads=True)
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        tracer.add_input(x)
        with tracing(tracer):
            y = ((x * 2.0).tanh() + x).sum()
            y.backward()
        tracer.mark_output_vid(tracer.grad_vid(x))
        tracer.graph.validate()
        compiled = CompiledGraph(optimize(tracer.graph, TRAIN_PASSES))
        other = np.random.default_rng(5).normal(size=(2, 3))
        x2 = Tensor(other, requires_grad=True)
        ((x2 * 2.0).tanh() + x2).sum().backward()
        np.testing.assert_array_equal(compiled.run(other)[0], x2.grad)

    def test_unbroadcast_node_emitted_for_broadcast_grad(self):
        tracer = Tracer(capture_grads=True)
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        tracer.add_input(x)
        tracer.add_input(bias)
        with tracing(tracer):
            (x + bias).sum().backward()
        assert "unbroadcast" in [node.op for node in tracer.graph.nodes]
        tracer.mark_output_vid(tracer.grad_vid(bias))
        compiled = CompiledGraph(optimize(tracer.graph, TRAIN_PASSES))
        other = np.random.default_rng(6).normal(size=(4, 3))
        x2 = Tensor(other, requires_grad=True)
        bias2 = Tensor(np.zeros(3), requires_grad=True)
        (x2 + bias2).sum().backward()
        np.testing.assert_array_equal(
            compiled.run(other, np.zeros(3))[0], bias2.grad
        )

    def test_capture_requires_zeroed_grads(self):
        tracer = Tracer(capture_grads=True)
        x = Tensor(np.ones(3), requires_grad=True)
        x.grad = np.ones(3)
        tracer.add_input(x)
        with tracing(tracer):
            with pytest.raises(RuntimeError, match="zeroed"):
                (x * 2.0).sum().backward()


class TestFuseElementwiseChains:
    @staticmethod
    def _linear_chain():
        graph = Graph()
        x = graph.new_value()
        graph.inputs.append(x)
        a = graph.new_value()
        graph.nodes.append(Node(op="exp", inputs=(x,), output=a))
        b = graph.new_value()
        graph.nodes.append(Node(op="neg", inputs=(a,), output=b))
        c = graph.new_value()
        graph.nodes.append(Node(op="tanh", inputs=(b,), output=c))
        graph.outputs.append(c)
        return graph

    def test_linear_chain_fuses_to_one_node(self):
        fused = fuse_elementwise_chains(self._linear_chain())
        assert [node.op for node in fused.nodes] == ["fused_chain"]
        assert fused.nodes[0].label == "exp,neg,tanh"
        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_array_equal(
            CompiledGraph(fused).run(x)[0], np.tanh(-np.exp(x))
        )

    def test_chain_with_external_operand(self):
        graph = Graph()
        x = graph.new_value()
        graph.inputs.append(x)
        scale = graph.add_constant(np.asarray(2.5))
        a = graph.new_value()
        graph.nodes.append(Node(op="mul", inputs=(x, scale), output=a))
        b = graph.new_value()
        graph.nodes.append(Node(op="exp", inputs=(a,), output=b))
        graph.outputs.append(b)
        fused = fuse_elementwise_chains(graph)
        assert [node.op for node in fused.nodes] == ["fused_chain"]
        x_val = np.random.default_rng(1).normal(size=(2, 3))
        np.testing.assert_array_equal(
            CompiledGraph(fused).run(x_val)[0], np.exp(x_val * 2.5)
        )

    def test_multi_consumer_value_breaks_the_chain(self):
        graph = Graph()
        x = graph.new_value()
        graph.inputs.append(x)
        a = graph.new_value()
        graph.nodes.append(Node(op="exp", inputs=(x,), output=a))
        b = graph.new_value()
        graph.nodes.append(Node(op="neg", inputs=(a,), output=b))
        c = graph.new_value()
        graph.nodes.append(Node(op="mul", inputs=(a, b), output=c))
        graph.outputs.append(c)
        fused = fuse_elementwise_chains(graph)
        # exp feeds two consumers, so it cannot start a chain; neg -> mul
        # still fuses, with exp's (multi-consumed) output as an external
        # operand of the fused kernel.
        assert [node.op for node in fused.nodes] == ["exp", "fused_chain"]
        assert fused.nodes[1].label == "neg,mul"
        x_val = np.random.default_rng(3).normal(size=(4,))
        np.testing.assert_array_equal(
            CompiledGraph(fused).run(x_val)[0],
            np.exp(x_val) * -np.exp(x_val),
        )

    def test_graph_output_midway_breaks_the_chain(self):
        graph = self._linear_chain()
        graph.outputs.append(graph.nodes[0].output)  # exp is now an output
        fused = fuse_elementwise_chains(graph)
        ops = [node.op for node in fused.nodes]
        assert "exp" in ops  # kept live as an observable output
        assert "fused_chain" in ops  # neg->tanh still fuses
        x = np.random.default_rng(2).normal(size=(5,))
        tanh_out, exp_out = CompiledGraph(fused).run(x)
        np.testing.assert_array_equal(exp_out, np.exp(x))
        np.testing.assert_array_equal(tanh_out, np.tanh(-np.exp(x)))

    def test_unbroadcast_fuses_into_grad_chain(self):
        """PR 10 satellite: the grad-reduction ``unbroadcast`` node rides
        inside the elementwise VJP chain that produced the gradient."""
        rng = np.random.default_rng(11)
        x_val = rng.normal(size=(8, 4))
        w_val = rng.normal(size=(4,))

        tracer = Tracer(capture_grads=True)
        x = Tensor(x_val, requires_grad=True)
        w = Tensor(w_val, requires_grad=True)
        tracer.add_input(x)
        tracer.add_input(w)
        with tracing(tracer):
            (x * w).tanh().sum().backward()
        tracer.mark_output_vid(tracer.grad_vid(w))
        unfused = optimize(tracer.graph, ("fold", "fuse", "dce"))
        fused = optimize(tracer.graph, TRAIN_PASSES)
        # Node-count regression: fusion strictly shrinks the plan, and the
        # unbroadcast link is inside a chain, not a standalone node.
        assert len(fused.nodes) < len(unfused.nodes)
        assert "unbroadcast" in [node.op for node in unfused.nodes]
        assert "unbroadcast" not in [node.op for node in fused.nodes]
        labels = [node.label or "" for node in fused.nodes
                  if node.op == "fused_chain"]
        assert any("unbroadcast" in label for label in labels)
        # Gradcheck: the fused replay matches both the eager backward
        # (bitwise) and a central finite difference (numerically).
        (replayed,) = CompiledGraph(fused).run(x_val, w_val)
        x2 = Tensor(x_val, requires_grad=True)
        w2 = Tensor(w_val, requires_grad=True)
        (x2 * w2).tanh().sum().backward()
        np.testing.assert_array_equal(replayed, w2.grad)
        eps = 1e-6
        numeric = np.zeros_like(w_val)
        for index in range(w_val.size):
            bumped = w_val.copy()
            bumped[index] += eps
            upper = np.tanh(x_val * bumped).sum()
            bumped[index] -= 2 * eps
            lower = np.tanh(x_val * bumped).sum()
            numeric[index] = (upper - lower) / (2 * eps)
        np.testing.assert_allclose(replayed, numeric, rtol=1e-5, atol=1e-8)

    def test_train_passes_fuse_the_joint_graph(self):
        """The TRAIN_PASSES pipeline shrinks the forward+backward+update
        graph without changing replayed results (covered by the parity
        tests below); unfused vs fused node counts pin the win."""
        x, labels = _tiny_batch()
        counts = {}
        for key, passes in (
            ("unfused", ("fold", "fuse", "dce")),
            ("fused", TRAIN_PASSES),
        ):
            model = _TinyTrainNet()
            model.train()
            step = CompiledTrainStep(
                model,
                SGD(model.parameters(), lr=0.05, momentum=0.9),
                3,
                passes=passes,
            )
            step.step(x, labels)
            (plan,) = step._cache.values()
            counts[key] = plan.compiled.num_steps
        assert counts["fused"] < counts["unfused"]
        fused_graph_ops = set()
        model = _TinyTrainNet()
        model.train()
        step = CompiledTrainStep(
            model, SGD(model.parameters(), lr=0.05, momentum=0.9), 3
        )
        step.step(x, labels)
        (plan,) = step._cache.values()
        fused_graph_ops = [n.op for n in plan.compiled.graph.nodes]
        assert "fused_chain" in fused_graph_ops


class TestCompiledTrainStep:
    @pytest.mark.parametrize(
        "make_optimizer",
        [
            lambda params: SGD(params, lr=0.05),
            lambda params: SGD(params, lr=0.05, momentum=0.9,
                               weight_decay=1e-4),
            lambda params: Adam(params, lr=0.01, weight_decay=1e-4),
        ],
        ids=["sgd", "sgd-momentum-wd", "adam-wd"],
    )
    def test_replay_bit_identical_to_eager(self, make_optimizer):
        batches = [_tiny_batch(seed) for seed in range(5)]

        eager_model = _TinyTrainNet()
        eager_opt = make_optimizer(eager_model.parameters())
        eager_sched = CosineSchedule(eager_opt, total_steps=5)
        eager_losses = _eager_train_steps(
            eager_model, eager_opt, eager_sched, batches
        )

        model = _TinyTrainNet()
        optimizer = make_optimizer(model.parameters())
        schedule = CosineSchedule(optimizer, total_steps=5)
        model.train()
        step = CompiledTrainStep(model, optimizer, 3, schedule=schedule)
        losses = [step.step(images, labels) for images, labels in batches]

        assert losses == eager_losses
        assert step.replay_count == 4  # one trace, four replays
        for name, value in eager_model.state_dict().items():
            np.testing.assert_array_equal(model.state_dict()[name], value)
        for group, buffers in _optim_buffers(eager_opt).items():
            for reference, actual in zip(
                buffers, _optim_buffers(optimizer)[group]
            ):
                np.testing.assert_array_equal(actual, reference)
        assert optimizer.lr == eager_opt.lr

    def test_shape_specialisation_per_batch_signature(self):
        model = _TinyTrainNet()
        model.train()
        step = CompiledTrainStep(model, SGD(model.parameters(), lr=0.05), 3)
        full = _tiny_batch(1, batch=4)
        short = _tiny_batch(2, batch=2)
        step.step(*full)
        step.step(*short)
        step.step(*full)
        step.step(*short)
        stats = step.stats()
        assert stats["specializations"] == 2
        assert stats["compile_count"] == 2
        assert stats["replay_count"] == 2

    def test_external_rebind_invalidates_cache(self):
        model = _TinyTrainNet()
        model.train()
        step = CompiledTrainStep(model, SGD(model.parameters(), lr=0.05), 3)
        x, labels = _tiny_batch()
        step.step(x, labels)
        step.step(x, labels)
        assert step.compile_count == 1
        # Checkpoint-restore style rebinding: load_state_dict swaps every
        # parameter's array identity, so the cached plan would silently
        # keep training the *old* arrays.  The staleness check re-traces.
        model.load_state_dict(model.state_dict())
        step.step(x, labels)
        assert step.compile_count == 2
        step.step(x, labels)
        assert step.compile_count == 2  # back to replaying

    def test_stats_pin_plan_memory(self):
        """Working-set regression pin for the joint graph's buffer plan."""
        model = _TinyTrainNet()
        model.train()
        step = CompiledTrainStep(
            model, SGD(model.parameters(), lr=0.05, momentum=0.9), 3
        )
        x, labels = _tiny_batch()
        step.step(x, labels)
        step.step(x, labels)
        (per_signature,) = step.stats()["signatures"].values()
        # 28 before unbroadcast joined chain fusion (PR 10): the grad
        # reduction feeding the weight update now rides inside the chain
        # that produced the gradient.
        assert per_signature == {
            "nodes": 27,
            "peak_live": 19,
            "num_slots": 22,
            "outputs": 5,
        }

    def test_eval_mode_rejected(self):
        model = _TinyTrainNet()
        model.eval()
        step = CompiledTrainStep(model, SGD(model.parameters(), lr=0.05), 3)
        with pytest.raises(RuntimeError, match="train"):
            step.step(*_tiny_batch())

    def test_dropout_rejected(self):
        from repro.nn.layers import Dropout

        class WithDropout(_TinyTrainNet):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5)

            def forward(self, x):
                return self.drop(super().forward(x))

        model = WithDropout()
        with pytest.raises(ValueError, match="Dropout"):
            CompiledTrainStep(model, SGD(model.parameters(), lr=0.05), 3)

    def test_optimizer_without_trace_step_rejected(self):
        class Plain:
            def __init__(self, params):
                self.parameters = list(params)

        model = _TinyTrainNet()
        with pytest.raises(TypeError, match="trace_step"):
            CompiledTrainStep(model, Plain(model.parameters()), 3)


class TestTrainerFitCompiled:
    def _dataset(self):
        from repro.data.synthetic_segmentation import (
            SyntheticSegmentationConfig,
            SyntheticSegmentationDataset,
        )

        return SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(
                image_size=8, num_classes=3, num_train=6, num_val=4, seed=7
            )
        )

    def _run_fit(self, train_engine=None, pwl_engine=None, use_context=False):
        dataset = self._dataset()
        config = ModelConfig(
            image_size=8, num_classes=3, embed_dim=8, depth=1, seed=0
        )
        if pwl_engine is not None:
            suite = PWLSuite(
                approximations={
                    op: build_approximation(op)
                    for op in ("exp", "gelu", "div", "rsqrt")
                },
                replace={"exp", "gelu", "div", "rsqrt"},
                engine=pwl_engine,
            )
            model = MiniSegformer(config, suite=suite)
            prepare_quantized_model(model)
        else:
            model = MiniSegformer(config, suite=FloatSuite())
        trainer = Trainer(
            model, TrainingConfig(epochs=2, batch_size=4, seed=0)
        )
        kwargs = {}
        if not use_context and train_engine is not None:
            kwargs["train_engine"] = train_engine
        if use_context:
            with engine_config.use(train_engine=train_engine):
                result = trainer.fit(
                    dataset.train_images, dataset.train_labels,
                    dataset.val_images, dataset.val_labels,
                    num_classes=dataset.num_classes,
                )
        else:
            result = trainer.fit(
                dataset.train_images, dataset.train_labels,
                dataset.val_images, dataset.val_labels,
                num_classes=dataset.num_classes, **kwargs
            )
        state = {
            name: value.copy()
            for name, value in trainer.model.state_dict().items()
        }
        return result, state

    @pytest.mark.parametrize("pwl_engine", [None, "dense", "legacy"],
                             ids=["float", "pwl-dense", "pwl-legacy"])
    def test_fit_bit_identical_across_train_engines(self, pwl_engine):
        eager_result, eager_state = self._run_fit("eager", pwl_engine)
        compiled_result, compiled_state = self._run_fit("compiled", pwl_engine)
        assert compiled_result.losses == eager_result.losses
        assert compiled_result.val_miou == eager_result.val_miou
        assert compiled_result.val_pixel_accuracy == \
            eager_result.val_pixel_accuracy
        for name, value in eager_state.items():
            np.testing.assert_array_equal(compiled_state[name], value)

    def test_engine_config_context_selects_compiled(self):
        explicit, explicit_state = self._run_fit("compiled")
        via_context, context_state = self._run_fit(
            "compiled", use_context=True
        )
        assert via_context.losses == explicit.losses
        for name, value in explicit_state.items():
            np.testing.assert_array_equal(context_state[name], value)
