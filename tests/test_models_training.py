"""Tests for the miniature models, training loop, metrics and synthetic data."""

import numpy as np
import pytest

from repro.data import SyntheticSegmentationConfig, SyntheticSegmentationDataset, generate_scene
from repro.nn import functional as F
from repro.nn.approx import FloatSuite, PWLSuite, QuantizedBaselineSuite
from repro.nn.metrics import confusion_matrix, iou_per_class, mean_iou, pixel_accuracy
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.quantization import QuantLinear
from repro.nn.tensor import Tensor
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model, transfer_weights

SMALL = ModelConfig(image_size=16, num_classes=4, embed_dim=16, depth=1, num_heads=2,
                    patch_size=4, seed=0)


class TestSyntheticData:
    def test_shapes_and_dtypes(self):
        config = SyntheticSegmentationConfig(image_size=16, num_classes=5,
                                             num_train=6, num_val=3, seed=0)
        ds = SyntheticSegmentationDataset(config)
        assert ds.train_images.shape == (6, 16, 16, 3)
        assert ds.train_labels.shape == (6, 16, 16)
        assert ds.val_images.shape == (3, 16, 16, 3)
        assert ds.train_labels.dtype == np.int64

    def test_pixel_range_and_labels(self):
        config = SyntheticSegmentationConfig(image_size=16, num_train=4, num_val=2, seed=1)
        ds = SyntheticSegmentationDataset(config)
        assert ds.train_images.min() >= 0.0 and ds.train_images.max() <= 1.0
        assert ds.train_labels.min() >= 0
        assert ds.train_labels.max() < config.num_classes

    def test_deterministic_given_seed(self):
        config = SyntheticSegmentationConfig(image_size=16, num_train=4, num_val=2, seed=7)
        a = SyntheticSegmentationDataset(config)
        b = SyntheticSegmentationDataset(config)
        np.testing.assert_allclose(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.val_labels, b.val_labels)

    def test_scene_has_multiple_classes(self):
        rng = np.random.default_rng(0)
        config = SyntheticSegmentationConfig(image_size=32)
        _, label = generate_scene(rng, config)
        assert len(np.unique(label)) >= 3

    def test_class_frequencies_sum_to_one(self):
        ds = SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(image_size=16, num_train=4, num_val=2)
        )
        assert sum(ds.class_frequencies().values()) == pytest.approx(1.0)

    def test_summary_mentions_classes(self):
        ds = SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(image_size=16, num_train=2, num_val=1)
        )
        assert "classes" in ds.summary()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticSegmentationConfig(num_classes=2)
        with pytest.raises(ValueError):
            SyntheticSegmentationConfig(image_size=4)


class TestMetrics:
    def test_confusion_matrix_counts(self):
        pred = np.array([0, 0, 1, 1])
        target = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(pred, target, num_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 0], [1, 2]])

    def test_perfect_prediction_miou_is_one(self):
        labels = np.random.default_rng(0).integers(0, 4, size=(2, 8, 8))
        assert mean_iou(labels, labels, 4) == pytest.approx(1.0)

    def test_disjoint_prediction_miou_is_zero(self):
        target = np.zeros((4, 4), dtype=int)
        pred = np.ones((4, 4), dtype=int)
        assert mean_iou(pred, target, 2) == pytest.approx(0.0)

    def test_absent_classes_ignored(self):
        target = np.zeros((4, 4), dtype=int)
        pred = np.zeros((4, 4), dtype=int)
        # Classes 1..3 never appear; mIoU should still be 1.0, not diluted.
        assert mean_iou(pred, target, 4) == pytest.approx(1.0)

    def test_iou_per_class_nan_for_absent(self):
        matrix = confusion_matrix(np.zeros(4, int), np.zeros(4, int), 3)
        iou = iou_per_class(matrix)
        assert np.isnan(iou[1]) and np.isnan(iou[2])

    def test_ignore_index(self):
        target = np.array([0, 1, 255])
        pred = np.array([0, 0, 0])
        assert pixel_accuracy(pred, target, ignore_index=255) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4), 2)


class TestOptimizers:
    def _quadratic_step(self, optimizer_cls, **kwargs):
        from repro.nn.module import Parameter

        param = Parameter(np.array([5.0]))
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (Tensor(param.data) * 0 + param * param).sum()
            loss.backward()
            optimizer.step()
        return float(param.data[0])

    def test_sgd_converges_on_quadratic(self):
        assert abs(self._quadratic_step(SGD, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert abs(self._quadratic_step(SGD, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges_on_quadratic(self):
        assert abs(self._quadratic_step(Adam, lr=0.1)) < 1e-2

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_optimizer_requires_positive_lr(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_cosine_schedule_decays_to_min(self):
        from repro.nn.module import Parameter

        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] > lrs[-1]
        assert lrs[-1] == pytest.approx(0.1)


class TestModels:
    def test_segformer_output_shape(self):
        model = MiniSegformer(SMALL)
        images = np.random.default_rng(0).random((2, 16, 16, 3))
        logits = model(Tensor(images))
        assert logits.shape == (2, 16, 16, 4)

    def test_efficientvit_output_shape(self):
        model = MiniEfficientViT(SMALL)
        images = np.random.default_rng(0).random((2, 16, 16, 3))
        logits = model(Tensor(images))
        assert logits.shape == (2, 16, 16, 4)

    def test_predict_returns_class_ids(self):
        model = MiniSegformer(SMALL)
        images = np.random.default_rng(0).random((1, 16, 16, 3))
        pred = model.predict(images)
        assert pred.shape == (1, 16, 16)
        assert pred.min() >= 0 and pred.max() < 4

    def test_operator_inventories(self):
        assert MiniSegformer.REPLACEABLE_OPERATORS == ("exp", "gelu", "div", "rsqrt")
        assert MiniEfficientViT.REPLACEABLE_OPERATORS == ("hswish", "div")

    def test_gradients_reach_every_parameter(self):
        model = MiniSegformer(SMALL)
        images = np.random.default_rng(0).random((2, 16, 16, 3))
        labels = np.random.default_rng(1).integers(0, 4, size=(2, 16, 16))
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_quantized_baseline_suite_builds(self):
        model = MiniSegformer(SMALL, suite=QuantizedBaselineSuite())
        images = np.random.default_rng(0).random((1, 16, 16, 3))
        assert model(Tensor(images)).shape == (1, 16, 16, 4)

    def test_prepare_quantized_model_replaces_linears(self):
        model = MiniSegformer(SMALL, suite=QuantizedBaselineSuite())
        replaced = prepare_quantized_model(model)
        assert replaced >= 6  # qkv, proj, fc1, fc2, patch proj, classifier
        assert any(isinstance(m, QuantLinear) for m in model.modules())

    def test_transfer_weights_between_float_and_quant(self):
        float_model = MiniSegformer(SMALL, suite=FloatSuite())
        quant_model = MiniSegformer(SMALL, suite=QuantizedBaselineSuite())
        prepare_quantized_model(quant_model)
        copied = transfer_weights(float_model, quant_model)
        assert copied > 10
        # Spot-check one copied weight.
        src = dict(float_model.named_parameters())["patch_embed.proj.weight"].data
        dst = dict(quant_model.named_parameters())["patch_embed.proj.inner.weight"].data
        np.testing.assert_allclose(src, dst)


class TestPWLSuiteIntegration:
    @pytest.fixture(scope="class")
    def approximations(self):
        from repro.core.pwl import fit_pwl, uniform_breakpoints
        from repro.functions.registry import get_function

        out = {}
        for name in ("gelu", "exp", "div", "rsqrt", "hswish"):
            fn = get_function(name)
            bp = uniform_breakpoints(*fn.search_range, num_entries=8)
            out[name] = fit_pwl(fn.fn, bp, fn.search_range).to_fixed_point(5)
        return out

    def test_pwl_segformer_forward_and_backward(self, approximations):
        suite = PWLSuite(approximations=approximations,
                         replace={"gelu", "exp", "div", "rsqrt"})
        model = MiniSegformer(SMALL, suite=suite)
        images = np.random.default_rng(0).random((1, 16, 16, 3))
        labels = np.random.default_rng(1).integers(0, 4, size=(1, 16, 16))
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward()
        assert np.isfinite(loss.item())

    def test_pwl_efficientvit_forward(self, approximations):
        suite = PWLSuite(approximations=approximations, replace={"hswish", "div"})
        model = MiniEfficientViT(SMALL, suite=suite)
        images = np.random.default_rng(0).random((1, 16, 16, 3))
        out = model(Tensor(images))
        assert np.all(np.isfinite(out.data))

    def test_partial_replacement_keeps_exact_ops(self, approximations):
        suite = PWLSuite(approximations=approximations, replace={"gelu"})
        # Only GELU is replaced; EXP/DIV/RSQRT fall back to exact operators.
        assert suite._should_replace("gelu")
        assert not suite._should_replace("exp")

    def test_pwl_output_close_to_quantized_baseline(self, approximations):
        """Replacing operators by an 8-entry pwl should perturb the logits,
        not destroy them."""
        base = MiniSegformer(SMALL, suite=QuantizedBaselineSuite())
        suite = PWLSuite(approximations=approximations,
                         replace={"gelu", "exp", "div", "rsqrt"})
        replaced = MiniSegformer(SMALL, suite=suite)
        transfer_weights(base, replaced)
        images = np.random.default_rng(0).random((1, 16, 16, 3))
        a = base(Tensor(images)).data
        b = replaced(Tensor(images)).data
        assert np.max(np.abs(a - b)) < 2.0


class TestTrainer:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(image_size=16, num_classes=4, num_train=16,
                                        num_val=8, seed=3)
        )

    def test_training_reduces_loss(self, tiny_dataset):
        model = MiniSegformer(SMALL)
        trainer = Trainer(model, TrainingConfig(epochs=4, batch_size=8,
                                                learning_rate=3e-3, seed=0))
        result = trainer.fit(tiny_dataset.train_images, tiny_dataset.train_labels,
                             tiny_dataset.val_images, tiny_dataset.val_labels,
                             num_classes=4)
        first_epoch = np.mean(result.losses[:2])
        last_epoch = np.mean(result.losses[-2:])
        assert last_epoch < first_epoch
        assert 0.0 <= result.val_miou <= 1.0
        assert result.duration_seconds > 0

    def test_training_beats_random_prediction(self, tiny_dataset):
        model = MiniSegformer(SMALL)
        trainer = Trainer(model, TrainingConfig(epochs=8, batch_size=8,
                                                learning_rate=3e-3, seed=0))
        result = trainer.fit(tiny_dataset.train_images, tiny_dataset.train_labels,
                             num_classes=4)
        # Random 4-class prediction would land near 1/4 pixel accuracy and
        # far lower mIoU; the trained model must clearly exceed chance mIoU.
        assert result.train_miou > 0.15

    def test_evaluate_returns_metrics(self, tiny_dataset):
        model = MiniSegformer(SMALL)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=8))
        miou, acc = trainer.evaluate(tiny_dataset.val_images, tiny_dataset.val_labels, 4)
        assert 0.0 <= miou <= 1.0
        assert 0.0 <= acc <= 1.0


class TestTrainStepReleasesTape:
    """Regression pin for the eager fit loop's memory contract: every
    step's backward must release the autograd tape (no retain_graph
    survivor), or a long fine-tune accumulates every intermediate
    activation of every step."""

    def _fixtures(self):
        dataset = SyntheticSegmentationDataset(
            SyntheticSegmentationConfig(
                image_size=16, num_classes=4, num_train=8, num_val=4, seed=5
            )
        )
        model = MiniSegformer(SMALL)
        trainer = Trainer(model, TrainingConfig(epochs=1, batch_size=4, seed=0))
        return trainer, dataset

    def test_forward_intermediates_are_freed_after_fit(self):
        import gc
        import weakref

        trainer, dataset = self._fixtures()
        refs = []
        original_forward = trainer.model.forward

        def spying_forward(x):
            out = original_forward(x)
            refs.append(weakref.ref(out))
            return out

        trainer.model.forward = spying_forward
        trainer.fit(
            dataset.train_images, dataset.train_labels, num_classes=4
        )
        gc.collect()
        assert refs and all(ref() is None for ref in refs)

    def test_fit_raises_if_backward_retains_the_tape(self, monkeypatch):
        trainer, dataset = self._fixtures()
        original_backward = Tensor.backward

        def sticky_backward(self, grad=None, retain_graph=False):
            return original_backward(self, grad, retain_graph=True)

        monkeypatch.setattr(Tensor, "backward", sticky_backward)
        with pytest.raises(RuntimeError, match="leaked its autograd tape"):
            trainer.fit(
                dataset.train_images, dataset.train_labels, num_classes=4
            )
