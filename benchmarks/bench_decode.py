"""KV-cached autoregressive decode benchmark (cached/compiled vs uncached).

Measures the PR 10 decode stack on a quantized :class:`MiniDecoder` (every
replaceable operator on its 8-entry pwl, INT8-quantized Linears):

1. **Greedy decode** — four paths over the same prompt/model state:
   uncached eager (the O(T²) full-forward-per-token baseline), uncached
   compiled, cached eager (O(T) KV-cached steps on the dynamic graph) and
   cached compiled (:class:`repro.graph.executor.CompiledDecodeStep`
   replays, one specialisation per power-of-two cache bucket).  Before
   timing, greedy token streams are asserted identical across **all
   eight** combinations (the four paths under both the dense and the
   legacy pwl engines); the cached-compiled over uncached-eager speedup is
   the headline gated by ``--min-decode-speedup``.
2. **Bucket-grouped serving** — concurrent sessions decoding through
   :meth:`repro.serve.BatchingServer.submit_decode` (one batched compiled
   step per cache bucket per drain) asserted token-identical to direct
   decode, with evidence the sessions actually shared steps.

The report carries a SHA-256 of the reference token stream;
``check_bench_parity.py`` compares it exactly against the recorded
baseline, so decode-semantics drift fails the build even when the in-run
parity flags still pass.

Results are written to ``BENCH_decode.json`` at the repository root; CI
runs the smoke budget and gates through check_bench_parity.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py
    PYTHONPATH=src python benchmarks/bench_decode.py \
        --smoke --output /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.training import prepare_quantized_model
from repro.nn.transformer import DecoderConfig, MiniDecoder, greedy_generate
from repro.serve import BatchingServer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_decode.json"

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_approximation(operator: str, num_entries: int = 8, frac_bits: int = 5):
    """A deterministic uniform-breakpoint FXP pwl (no search needed here)."""
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(frac_bits)


def build_model(config: DecoderConfig, pwl_engine: str) -> MiniDecoder:
    suite = PWLSuite(
        approximations={op: build_approximation(op) for op in OPERATORS},
        replace=set(OPERATORS),
        engine=pwl_engine,
    )
    model = MiniDecoder(config, suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


def _timed_decode(model, prompt, num_new, cache, engine, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one full greedy decode loop."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        greedy_generate(model, prompt, num_new, cache=cache, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def bench_decode(config: DecoderConfig, prompt, num_new: int, repeats: int) -> dict:
    """8-way stream parity, then timing of the four decode paths."""
    streams = {}
    models = {}
    for pwl_engine in ("dense", "legacy"):
        for cache in (False, True):
            for engine in ("eager", "compiled"):
                model = build_model(config, pwl_engine)
                streams[(pwl_engine, cache, engine)] = greedy_generate(
                    model, prompt, num_new, cache=cache, engine=engine
                )
                if (cache, engine) == (True, "compiled"):
                    models[pwl_engine] = model
    reference = streams[("dense", False, "eager")]
    identical = all(stream == reference for stream in streams.values())
    if not identical:
        raise AssertionError("decode: token streams diverged: %r" % streams)

    model = models["dense"]
    step = model.compiled_step()
    total = len(prompt) + num_new

    timings = {
        "uncached_eager": _timed_decode(model, prompt, num_new, False, "eager", repeats),
        "uncached_compiled": _timed_decode(model, prompt, num_new, False, "compiled", repeats),
        "cached_eager": _timed_decode(model, prompt, num_new, True, "eager", repeats),
        "cached_compiled": _timed_decode(model, prompt, num_new, True, "compiled", repeats),
    }
    checksum = hashlib.sha256(
        np.asarray(reference, dtype=np.int64).tobytes()
    ).hexdigest()
    return {
        "model": "MiniDecoder",
        "vocab_size": config.vocab_size,
        "max_seq": config.max_seq,
        "embed_dim": config.embed_dim,
        "depth": config.depth,
        "prompt_len": len(prompt),
        "new_tokens": num_new,
        "sequence_length": total,
        "trace_specializations": step.specializations,
        "uncached_eager_seconds": timings["uncached_eager"],
        "uncached_compiled_seconds": timings["uncached_compiled"],
        "cached_eager_seconds": timings["cached_eager"],
        "cached_compiled_seconds": timings["cached_compiled"],
        "cached_compiled_ms_per_token": 1e3 * timings["cached_compiled"] / num_new,
        "speedup": timings["uncached_eager"] / timings["cached_compiled"],
        "cached_speedup_eager": timings["uncached_eager"] / timings["cached_eager"],
        "compiled_step_speedup": timings["cached_eager"] / timings["cached_compiled"],
        "identical_streams": True,
        "tokens_sha256": checksum,
    }


def bench_serving_decode(config: DecoderConfig, num_sessions: int,
                         num_new: int, max_batch: int) -> dict:
    """Concurrent bucket-grouped serving vs direct per-session decode."""
    rng = np.random.default_rng(11)
    prompts = [
        [int(t) for t in rng.integers(0, config.vocab_size, size=length)]
        for length in rng.integers(2, 9, size=num_sessions)
    ]

    direct_model = build_model(config, "dense")
    direct_model.calibrate(prompts[0])
    direct = [
        greedy_generate(direct_model, prompt, num_new, cache=True, engine="eager")
        for prompt in prompts
    ]

    served_model = build_model(config, "dense")
    served_model.calibrate(prompts[0])
    with BatchingServer(served_model, max_batch=max_batch, max_wait_ms=2.0,
                        decode_engine="compiled") as server:
        results = [None] * num_sessions

        def run(index: int) -> None:
            results[index] = server.generate(prompts[index], num_new, timeout=600)

        start = time.perf_counter()
        threads = [threading.Thread(target=run, args=(i,)) for i in range(num_sessions)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        served_seconds = time.perf_counter() - start
        stats = server.stats()

    identical = results == direct
    if not identical:
        raise AssertionError("served decode streams diverged from direct decode")
    batched = stats.decode_steps > stats.decode_batches
    if not batched:
        raise AssertionError(
            "no decode batching occurred (%d steps in %d batches)"
            % (stats.decode_steps, stats.decode_batches)
        )
    return {
        "sessions": num_sessions,
        "new_tokens_per_session": num_new,
        "max_batch": max_batch,
        "decode_steps": stats.decode_steps,
        "decode_batches": stats.decode_batches,
        "mean_group_size": stats.decode_steps / stats.decode_batches,
        "served_seconds": served_seconds,
        "tokens_per_second": num_sessions * num_new / served_seconds,
        "identical_results": True,
        "batched": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budget: shorter sequence, fewer sessions, 3x gate",
    )
    parser.add_argument(
        "--min-decode-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if cached-compiled decode is not at least this "
        "many times faster than uncached eager decode (default 5.0 for full "
        "runs, 3.0 with --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        config = DecoderConfig(vocab_size=32, max_seq=48, embed_dim=48,
                               depth=2, num_heads=2, seed=3)
        prompt_len, num_new = 4, 28       # sequence length 32
        num_sessions, serve_new, max_batch = 4, 10, 8
        min_speedup = 3.0 if args.min_decode_speedup is None else args.min_decode_speedup
    else:
        config = DecoderConfig(vocab_size=32, max_seq=192, embed_dim=64,
                               depth=2, num_heads=2, seed=3)
        prompt_len, num_new = 8, 152      # sequence length 160 (floor is 128)
        num_sessions, serve_new, max_batch = 6, 24, 8
        # The O(T^2) -> O(T) cache win plus the compiled single-token plan
        # land well above 5x by T=160 at this width; 5.0 gates regressions
        # without flaking on scheduler noise.
        min_speedup = 5.0 if args.min_decode_speedup is None else args.min_decode_speedup

    prompt = [(3 * index + 1) % config.vocab_size for index in range(prompt_len)]

    report = {
        "benchmark": "decode",
        "config": {
            "vocab_size": config.vocab_size,
            "max_seq": config.max_seq,
            "embed_dim": config.embed_dim,
            "depth": config.depth,
            "prompt_len": prompt_len,
            "new_tokens": num_new,
            "repeats": args.repeats,
            "sessions": num_sessions,
            "smoke": bool(args.smoke),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }

    failures = []
    decode = bench_decode(config, prompt, num_new, args.repeats)
    report["decode"] = decode
    print(
        "decode T=%-4d uncached-eager %7.2fs   cached-eager %6.2fs   "
        "cached-compiled %6.2fs   speedup %5.2fx   (%d bucket plans)"
        % (
            decode["sequence_length"],
            decode["uncached_eager_seconds"],
            decode["cached_eager_seconds"],
            decode["cached_compiled_seconds"],
            decode["speedup"],
            decode["trace_specializations"],
        )
    )
    if decode["speedup"] < min_speedup:
        failures.append(
            "cached compiled decode speedup %.2fx below required %.2fx"
            % (decode["speedup"], min_speedup)
        )

    serving = bench_serving_decode(config, num_sessions, serve_new, max_batch)
    report["serving_decode"] = serving
    print(
        "serving (%d sessions x %d tokens)  %6.1f tok/s   "
        "%d steps in %d batches (mean group %.1f)"
        % (
            serving["sessions"],
            serving["new_tokens_per_session"],
            serving["tokens_per_second"],
            serving["decode_steps"],
            serving["decode_batches"],
            serving["mean_group_size"],
        )
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)

    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
