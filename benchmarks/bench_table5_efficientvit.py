"""Table 5: fine-tuning mIoU of the MiniEfficientViT substitute."""

import pytest

from repro.experiments.table5 import format_table5, run_table5


@pytest.mark.benchmark(group="table5")
def test_table5_efficientvit_finetune(benchmark, approx_budget, finetune_budget):
    result = benchmark.pedantic(
        run_table5,
        kwargs={
            "budget": finetune_budget,
            "approx_budget": approx_budget,
            "include_individual": True,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table5(result))
    assert 0.0 <= result.baseline_miou <= 1.0
    assert len(result.rows) == 3 * (len(result.operators) + 1)
    for row in result.rows:
        assert 0.0 <= row.miou <= 1.0
        assert row.degradation < 0.5
