"""Figure 3: normalized MSE for GELU / HSWISH / EXP, 8 and 16 entries."""

import numpy as np
import pytest

from repro.experiments.fig3 import format_fig3, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_mse_across_scales(benchmark, approx_budget):
    result = benchmark.pedantic(
        run_fig3,
        kwargs={
            "operators": ("gelu", "hswish", "exp"),
            "methods": ("nn-lut", "gqa-rm"),
            "entries": (8, 16),
            "budget": approx_budget,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_fig3(result))
    # GQA-LUT w/ RM should improve over NN-LUT on average for every operator
    # and entry count (the paper reports 2.4x-26x per-scale factors).
    for operator in ("gelu", "hswish", "exp"):
        for entries in (8, 16):
            nn = next(s for s in result.series
                      if s.operator == operator and s.method == "nn-lut"
                      and s.num_entries == entries)
            gqa = next(s for s in result.series
                       if s.operator == operator and s.method == "gqa-rm"
                       and s.num_entries == entries)
            # Strict dominance is asserted with a 10% tolerance so that a
            # single unlucky seed at reduced search budgets does not flip the
            # structural conclusion; the recorded numbers live in
            # EXPERIMENTS.md.
            assert gqa.average < nn.average * 1.1, (
                "%s %d-entry: gqa-rm (%.2e) should beat nn-lut (%.2e)"
                % (operator, entries, gqa.average, nn.average)
            )
