"""Table 3: average MSE of every method on every operator (8/16 entries)."""

import pytest

from repro.experiments.table3 import format_table3, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_average_mse(benchmark, approx_budget):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "operators": ("gelu", "hswish", "exp", "div", "rsqrt"),
            "methods": ("nn-lut", "gqa-wo-rm", "gqa-rm"),
            "entries": (8, 16),
            "budget": approx_budget,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table3(result))
    # The paper's takeaway: a GQA-LUT variant wins every column against
    # NN-LUT for the scale-dependent operators.
    for entries in (8, 16):
        for operator in ("gelu", "hswish", "exp"):
            nn = result.value("nn-lut", entries, operator)
            best_gqa = min(result.value("gqa-wo-rm", entries, operator),
                           result.value("gqa-rm", entries, operator))
            # 10% tolerance guards against seed noise at reduced budgets; the
            # recorded numbers are in EXPERIMENTS.md.
            assert best_gqa < nn * 1.1, (
                "%s %d-entry: GQA (%.2e) should beat NN-LUT (%.2e)"
                % (operator, entries, best_gqa, nn)
            )
