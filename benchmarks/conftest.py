"""Shared configuration for the benchmark harnesses.

Each benchmark regenerates one table or figure of the paper.  The search /
training budgets default to a "medium" setting so the whole suite finishes
in a few minutes; set the environment variable ``REPRO_BENCH_BUDGET=paper``
for the full Table 1 budgets (500 generations, 100K NN-LUT samples) or
``REPRO_BENCH_BUDGET=quick`` for a fast smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.methods import ApproximationBudget
from repro.experiments.finetune import FinetuneBudget


def _approx_budget() -> ApproximationBudget:
    mode = os.environ.get("REPRO_BENCH_BUDGET", "medium").lower()
    if mode == "paper":
        return ApproximationBudget.paper()
    if mode == "quick":
        return ApproximationBudget.quick()
    return ApproximationBudget(generations=150, population_size=50,
                               nn_lut_samples=20_000, nn_lut_iterations=2000, seed=0)


def _finetune_budget() -> FinetuneBudget:
    mode = os.environ.get("REPRO_BENCH_BUDGET", "medium").lower()
    if mode == "paper":
        return FinetuneBudget(pretrain_epochs=40, finetune_epochs=8, num_train=128,
                              num_val=48, image_size=32, embed_dim=32, depth=2)
    if mode == "quick":
        return FinetuneBudget.quick()
    return FinetuneBudget(pretrain_epochs=20, finetune_epochs=4, num_train=64,
                          num_val=24, image_size=24, embed_dim=24, depth=2)


@pytest.fixture(scope="session")
def approx_budget() -> ApproximationBudget:
    return _approx_budget()


@pytest.fixture(scope="session")
def finetune_budget() -> FinetuneBudget:
    return _finetune_budget()
