"""Fine-tuning throughput benchmark (dense-table engine vs. legacy pipeline).

Measures three layers of the quantized fine-tuning stack:

1. **Operator throughput** — one training step's worth of Fig. 1b unit work
   (forward lookup + selected-segment slope) through the legacy
   :class:`QuantizedLUT` comparer pipeline versus the fused
   :class:`DenseLUT` gather, on a ``(16, 64, 64)`` activation.  Outputs and
   slopes are asserted bit-identical.
2. **PWL fine-tuning step** — forward + backward through the operator
   modules (``PWLActivation`` for GELU/EXP, ``PWLWideRange`` for DIV/RSQRT)
   under ``engine="dense"`` and ``engine="legacy"``, including the autograd
   plumbing (`apply_elementwise_fused` vs. `apply_elementwise`).  Gradients
   are asserted bit-identical; the combined speedup across the four
   operators is the headline number gated by ``--min-step-speedup``.
3. **Model fine-tune** — a seeded MiniSegformer quantization-aware
   fine-tune (all four operators replaced) under both engines.  Losses and
   validation mIoU are asserted *identical*, pinning the engine contract
   end to end; the fit-time speedup is reported (matmuls, LSQ fake-quant
   and optimizer work are shared between engines, so this ratio is smaller
   than the operator-level one).
4. **Compiled training** — the same fine-tune under
   ``train_engine="compiled"`` (the whole forward + backward + optimizer
   step traced once and replayed from a static plan) versus the eager
   loop.  Losses, final weights and validation mIoU are asserted
   bit-identical; the fit-time speedup is the headline gated by
   ``--min-train-speedup``.

Results are written to ``BENCH_finetune_throughput.json`` at the repository
root so the performance trajectory is tracked across PRs; CI runs a reduced
``--smoke`` pass that checks the bit-parity contract without the speedup
gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_finetune_throughput.py
    PYTHONPATH=src python benchmarks/bench_finetune_throughput.py \
        --smoke --output /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.lut import DenseLUT, QuantizedLUT
from repro.core.pwl import PiecewiseLinear, fit_pwl, uniform_breakpoints
from repro.data.synthetic_segmentation import (
    SyntheticSegmentationConfig,
    SyntheticSegmentationDataset,
)
from repro.experiments.finetune import FinetuneBudget
from repro.functions.registry import get_function
from repro.nn.approx import PWLActivation, PWLSuite, PWLWideRange
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.tensor import Tensor
from repro.nn.training import Trainer, TrainingConfig, prepare_quantized_model

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_finetune_throughput.json"

OPERATORS = ("exp", "gelu", "div", "rsqrt")
WIDE_RANGE = {"div", "rsqrt"}


def build_approximation(operator: str, num_entries: int = 8, frac_bits: int = 5) -> PiecewiseLinear:
    """A deterministic uniform-breakpoint FXP pwl (no search needed here)."""
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(frac_bits)


def _timed(fn_call, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_call()
        best = min(best, time.perf_counter() - start)
    return best


def bench_operator_throughput(shape, repeats: int, seed: int) -> dict:
    """Raw Fig. 1b unit: comparer pipeline vs. dense gather (GELU)."""
    pwl = build_approximation("gelu")
    scale = 2.0 ** -4
    legacy = QuantizedLUT(pwl=pwl, scale=scale)
    dense = DenseLUT.from_quantized(legacy)
    x = np.random.default_rng(seed).normal(scale=0.7, size=shape)

    def legacy_step():
        out = legacy(x)
        q = np.clip(np.round(x / legacy.scale), legacy.spec.qmin, legacy.spec.qmax)
        return out, legacy.stored_slopes[legacy.segment_index(q)]

    out_legacy, slope_legacy = legacy_step()
    out_dense, slope_dense = dense.lookup_with_slope(x)
    if not (np.array_equal(out_legacy, out_dense) and np.array_equal(slope_legacy, slope_dense)):
        raise AssertionError("dense operator diverged from the legacy pipeline")

    t_legacy = _timed(legacy_step, repeats)
    t_dense = _timed(lambda: dense.lookup_with_slope(x), repeats)
    return {
        "shape": list(shape),
        "legacy_seconds": t_legacy,
        "dense_seconds": t_dense,
        "speedup": t_legacy / t_dense,
        "identical_results": True,
    }


def bench_pwl_step(shape, repeats: int, seed: int) -> dict:
    """Forward + backward through the pwl operator modules, per engine."""
    rng = np.random.default_rng(seed)
    base = rng.normal(scale=0.7, size=shape)

    def module_step(module, data):
        x = Tensor(data, requires_grad=True)
        y = module(x)
        y.backward(np.ones_like(data))
        return y.data, x.grad

    per_operator = {}
    totals = {"legacy": 0.0, "dense": 0.0}
    for operator in OPERATORS:
        # Wide-range inputs span I_R, every Table 2 sub-range and beyond.
        data = np.abs(base) * 300 + 0.3 if operator in WIDE_RANGE else base
        pwl = build_approximation(operator)
        modules, results = {}, {}
        for engine in ("legacy", "dense"):
            if operator in WIDE_RANGE:
                module = PWLWideRange(operator, pwl, engine=engine)
            else:
                module = PWLActivation(operator, pwl, engine=engine)
            module_step(module, data)  # initialise quantizer / warm caches
            modules[engine] = module
            results[engine] = module_step(module, data)
        if not (
            np.array_equal(results["legacy"][0], results["dense"][0])
            and np.array_equal(results["legacy"][1], results["dense"][1])
        ):
            raise AssertionError("engines diverged for operator %r" % operator)
        times = {
            engine: _timed(lambda m=module: module_step(m, data), repeats)
            for engine, module in modules.items()
        }
        totals["legacy"] += times["legacy"]
        totals["dense"] += times["dense"]
        per_operator[operator] = {
            "legacy_seconds": times["legacy"],
            "dense_seconds": times["dense"],
            "speedup": times["legacy"] / times["dense"],
        }
    return {
        "shape": list(shape),
        "operators": per_operator,
        "legacy_seconds": totals["legacy"],
        "dense_seconds": totals["dense"],
        "speedup": totals["legacy"] / totals["dense"],
        "identical_results": True,
    }


def bench_model_finetune(budget: FinetuneBudget, epochs: int) -> dict:
    """Seeded quantization-aware fine-tune under both engines."""
    approximations = {op: build_approximation(op) for op in OPERATORS}
    dataset = SyntheticSegmentationDataset(
        SyntheticSegmentationConfig(
            image_size=budget.image_size,
            num_classes=budget.num_classes,
            num_train=budget.num_train,
            num_val=budget.num_val,
            seed=budget.seed + 101,
        )
    )
    model_config = ModelConfig(
        image_size=budget.image_size,
        num_classes=budget.num_classes,
        embed_dim=budget.embed_dim,
        depth=budget.depth,
        seed=budget.seed,
    )

    timings, results = {}, {}
    for engine in ("legacy", "dense"):
        suite = PWLSuite(
            approximations=approximations, replace=set(OPERATORS), engine=engine
        )
        model = MiniSegformer(model_config, suite=suite)
        prepare_quantized_model(model)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=epochs,
                batch_size=budget.batch_size,
                learning_rate=budget.finetune_lr,
                seed=budget.seed,
            ),
        )
        start = time.perf_counter()
        results[engine] = trainer.fit(
            dataset.train_images, dataset.train_labels,
            dataset.val_images, dataset.val_labels,
            num_classes=dataset.num_classes,
        )
        timings[engine] = time.perf_counter() - start

    legacy, dense = results["legacy"], results["dense"]
    identical = bool(
        legacy.losses == dense.losses and legacy.val_miou == dense.val_miou
    )
    if not identical:
        raise AssertionError("dense and legacy fine-tuning trajectories diverged")
    return {
        "model": "MiniSegformer",
        "image_size": budget.image_size,
        "embed_dim": budget.embed_dim,
        "depth": budget.depth,
        "epochs": epochs,
        "steps": len(dense.losses),
        "legacy_seconds": timings["legacy"],
        "dense_seconds": timings["dense"],
        "speedup": timings["legacy"] / timings["dense"],
        "identical_losses": identical,
        "val_miou": dense.val_miou,
    }


def bench_compiled_train(budget: FinetuneBudget, epochs: int) -> dict:
    """Compiled train engine vs. eager: bit-identical, then timed.

    Both runs use the dense pwl engine (the PR 2 default); only the
    training engine differs.  Losses, final weights and validation mIoU
    must match bitwise — the PR 9 contract — before any timing is
    reported.
    """
    approximations = {op: build_approximation(op) for op in OPERATORS}
    dataset = SyntheticSegmentationDataset(
        SyntheticSegmentationConfig(
            image_size=budget.image_size,
            num_classes=budget.num_classes,
            num_train=budget.num_train,
            num_val=budget.num_val,
            seed=budget.seed + 101,
        )
    )
    model_config = ModelConfig(
        image_size=budget.image_size,
        num_classes=budget.num_classes,
        embed_dim=budget.embed_dim,
        depth=budget.depth,
        seed=budget.seed,
    )

    timings, results, states = {}, {}, {}
    for engine in ("eager", "compiled"):
        suite = PWLSuite(
            approximations=approximations, replace=set(OPERATORS), engine="dense"
        )
        model = MiniSegformer(model_config, suite=suite)
        prepare_quantized_model(model)
        trainer = Trainer(
            model,
            TrainingConfig(
                epochs=epochs,
                batch_size=budget.batch_size,
                learning_rate=budget.finetune_lr,
                seed=budget.seed,
            ),
        )
        start = time.perf_counter()
        results[engine] = trainer.fit(
            dataset.train_images, dataset.train_labels,
            dataset.val_images, dataset.val_labels,
            num_classes=dataset.num_classes,
            train_engine=engine,
        )
        timings[engine] = time.perf_counter() - start
        states[engine] = {
            name: value.copy() for name, value in model.state_dict().items()
        }

    eager, compiled = results["eager"], results["compiled"]
    identical_losses = bool(eager.losses == compiled.losses)
    identical_weights = all(
        np.array_equal(states["eager"][name], states["compiled"][name])
        for name in states["eager"]
    )
    if not (identical_losses and identical_weights
            and eager.val_miou == compiled.val_miou):
        raise AssertionError("compiled training diverged from eager")
    return {
        "model": "MiniSegformer",
        "image_size": budget.image_size,
        "embed_dim": budget.embed_dim,
        "depth": budget.depth,
        "epochs": epochs,
        "steps": len(compiled.losses),
        "eager_seconds": timings["eager"],
        "compiled_seconds": timings["compiled"],
        "speedup": timings["eager"] / timings["compiled"],
        "identical_losses": identical_losses,
        "identical_weights": identical_weights,
        "val_miou": compiled.val_miou,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budget: small activations + quick model, no speedup gate",
    )
    parser.add_argument(
        "--min-step-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the combined pwl-step speedup falls below this "
        "factor (default 2.5 for full runs, disabled with --smoke)",
    )
    parser.add_argument(
        "--min-train-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the compiled-vs-eager fine-tune speedup falls "
        "below this factor (default 1.5 for full runs, disabled with --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        shape = (4, 32, 32)
        repeats = min(args.repeats, 5)
        budget = FinetuneBudget.quick()
        epochs = 1
        min_speedup = args.min_step_speedup or 0.0
        min_train_speedup = args.min_train_speedup or 0.0
    else:
        shape = (16, 64, 64)
        repeats = args.repeats
        budget = FinetuneBudget()
        epochs = args.epochs
        # The measured step speedup lands in a ~2.8-3.1x band run to run on
        # a shared 1-core container (searchsorted dominates the legacy
        # path); 2.5 gates real regressions without flaking on scheduler
        # noise.  check_bench_parity.py holds the tighter per-path line
        # against the recorded baseline.
        min_speedup = 2.5 if args.min_step_speedup is None else args.min_step_speedup
        min_train_speedup = (
            1.5 if args.min_train_speedup is None else args.min_train_speedup
        )

    operator_stats = bench_operator_throughput(shape, repeats, args.seed)
    step_stats = bench_pwl_step(shape, repeats, args.seed)
    model_stats = bench_model_finetune(budget, epochs)
    train_stats = bench_compiled_train(budget, epochs)

    report = {
        "benchmark": "finetune_throughput",
        "config": {
            "shape": list(shape),
            "repeats": repeats,
            "epochs": epochs,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "operator": operator_stats,
        "pwl_step": step_stats,
        "model_finetune": model_stats,
        "compiled_train": train_stats,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print("operator (GELU, shape %s):" % (tuple(shape),))
    print(
        "  legacy %7.3fms   dense %7.3fms   speedup %5.1fx"
        % (
            1e3 * operator_stats["legacy_seconds"],
            1e3 * operator_stats["dense_seconds"],
            operator_stats["speedup"],
        )
    )
    print("pwl fine-tuning step (forward + backward, per operator):")
    for operator, stats in step_stats["operators"].items():
        print(
            "  %6s: legacy %7.3fms   dense %7.3fms   speedup %5.1fx"
            % (
                operator,
                1e3 * stats["legacy_seconds"],
                1e3 * stats["dense_seconds"],
                stats["speedup"],
            )
        )
    print(
        "  combined: legacy %7.3fms   dense %7.3fms   speedup %5.1fx"
        % (
            1e3 * step_stats["legacy_seconds"],
            1e3 * step_stats["dense_seconds"],
            step_stats["speedup"],
        )
    )
    print(
        "model fine-tune (MiniSegformer, %d steps): legacy %6.2fs   dense %6.2fs"
        "   speedup %4.1fx   (losses identical: %s)"
        % (
            model_stats["steps"],
            model_stats["legacy_seconds"],
            model_stats["dense_seconds"],
            model_stats["speedup"],
            model_stats["identical_losses"],
        )
    )
    print(
        "compiled training (MiniSegformer, %d steps): eager %6.2fs   compiled"
        " %6.2fs   speedup %4.2fx   (losses identical: %s, weights identical:"
        " %s)"
        % (
            train_stats["steps"],
            train_stats["eager_seconds"],
            train_stats["compiled_seconds"],
            train_stats["speedup"],
            train_stats["identical_losses"],
            train_stats["identical_weights"],
        )
    )
    print("wrote %s" % args.output)

    if step_stats["speedup"] < min_speedup:
        print(
            "FAIL: pwl-step speedup %.1fx below required %.1fx"
            % (step_stats["speedup"], min_speedup)
        )
        return 1
    if train_stats["speedup"] < min_train_speedup:
        print(
            "FAIL: compiled-train speedup %.2fx below required %.2fx"
            % (train_stats["speedup"], min_train_speedup)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
