"""Guard a fresh benchmark report against a recorded BENCH_*.json baseline.

Used after refactors that touch the hot paths (e.g. the op-registry /
backend-dispatch rework): rerun the benchmark, then assert

1. **exact parity** of every deterministic outcome the report carries —
   engine bit-identity flags, seeded GA work counters (`evaluations`,
   `fitness_calls`, `cache_hits`), `best_fitness`, fine-tune `steps` and
   `val_miou`.  These are timing-independent; any drift means the refactor
   changed semantics, not just speed.
2. **within-noise timing parity** — the fresh fast-path timings
   (`dense_seconds` / `batch_seconds`) may not exceed the baseline by more
   than ``--tolerance`` (default 1.5x, generous because the container is
   shared).  Catches dispatch overhead regressions without flaking on
   scheduler noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_ga_throughput.py --output /tmp/ga.json
    python benchmarks/check_bench_parity.py \
        --baseline BENCH_ga_throughput.json --fresh /tmp/ga.json

Exits non-zero with a per-check report on any violation.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

# (section, key) pairs that must be exactly equal between baseline and
# fresh report when present in both: seeded, timing-independent outcomes.
EXACT_KEYS = (
    ("search", "identical_results"),
    ("search", "evaluations"),
    ("search", "fitness_calls"),
    ("search", "cache_hits"),
    ("search", "best_fitness"),
    ("operator", "identical_results"),
    ("pwl_step", "identical_results"),
    ("model_finetune", "identical_losses"),
    ("model_finetune", "steps"),
    ("model_finetune", "val_miou"),
    # Compiled-training benchmark section: the traced whole-step replay
    # must stay bit-identical to the eager loop (losses, final weights,
    # and the downstream validation mIoU) over the same step count.
    ("compiled_train", "identical_losses"),
    ("compiled_train", "identical_weights"),
    ("compiled_train", "steps"),
    ("compiled_train", "val_miou"),
    # Compiled-inference benchmark: the 4-way eager/compiled x dense/legacy
    # parity flags, the seeded prediction checksums (drift between the
    # traced executor and the eager forward changes the hash even when the
    # in-run flags pass vacuously), and the serving response parity.
    ("segformer_predict", "identical_results"),
    ("segformer_predict", "predictions_sha256"),
    ("efficientvit_predict", "identical_results"),
    ("efficientvit_predict", "predictions_sha256"),
    ("serving", "identical_results"),
    # Serving benchmark (bench_serving.py): bit-parity at low rate and
    # under injected-fault eager degradation, and the admission queue
    # staying bounded under an overload burst.
    ("load", "identical_results"),
    ("degradation", "identical_results"),
    ("shedding", "bounded"),
    # Replicated-serving benchmark (bench_replicated_serving.py): the
    # chaos SLOs are all-or-nothing semantics — no request dropped or
    # corrupted across a replica SIGKILL, and a rolling hot-swap that
    # serves old-or-new (never mixed) and lands fully on the new weights.
    ("kill", "zero_dropped"),
    ("kill", "identical_results"),
    ("swap", "zero_dropped"),
    ("swap", "no_mixed_responses"),
    ("swap", "identical_after_swap"),
    # Sweep-resilience benchmark (bench_sweep_resilience.py): a SIGKILLed
    # durable sweep resumes with zero completed cells rebuilt and
    # bit-identical artifacts, and a scrub pass detects an injected
    # bit-flip, heals it on the next access, and leaves the store clean.
    ("kill_resume", "zero_rebuilds"),
    ("kill_resume", "identical_results"),
    ("scrub", "detected"),
    ("scrub", "healed"),
    ("scrub", "post_heal_corrupt"),
    # Decode benchmark (bench_decode.py): the 8-way cached/uncached x
    # eager/compiled x dense/legacy greedy-stream parity, the SHA-256 of
    # the reference token stream (semantics drift changes the hash even
    # when the in-run flags pass), the power-of-two bucket specialization
    # count, and the served-vs-direct decode parity.  decode_steps is a
    # seeded work counter (sessions x steps); decode_batches is
    # scheduling-dependent and deliberately not pinned.
    ("decode", "identical_streams"),
    ("decode", "tokens_sha256"),
    ("decode", "trace_specializations"),
    ("serving_decode", "identical_results"),
    ("serving_decode", "batched"),
    ("serving_decode", "decode_steps"),
)

# (section, key) fast-path timings gated by the noise tolerance.
TIMING_KEYS = (
    ("search", "batch_seconds"),
    ("fitness", "batch_seconds"),
    ("operator", "dense_seconds"),
    ("pwl_step", "dense_seconds"),
    ("model_finetune", "dense_seconds"),
    ("compiled_train", "compiled_seconds"),
    ("segformer_predict", "compiled_seconds"),
    ("efficientvit_predict", "compiled_seconds"),
    # Uncontended serving latency (bench_serving.py's lowest load level).
    ("latency", "p50_seconds"),
    ("latency", "p99_seconds"),
    # Client-observed p99 across the chaos incidents
    # (bench_replicated_serving.py); throughput-vs-replicas is recorded
    # but never gated — the container is frequently single-core.
    ("kill", "p99_seconds"),
    ("swap", "p99_seconds"),
    # Journal replay + finish time for the resumed sweep
    # (bench_sweep_resilience.py); the kill phase itself is not gated.
    ("kill_resume", "resume_seconds"),
    # Cached compiled decode loop (bench_decode.py) — the headline path;
    # uncached baselines are recorded but not gated.
    ("decode", "cached_compiled_seconds"),
)


def _lookup(report: dict, section: str, key: str):
    value = report.get(section)
    if not isinstance(value, dict):
        return None
    return value.get(key)


def compare(baseline: dict, fresh: dict, tolerance: float):
    """Yield (ok, message) for every applicable check.

    A key present in exactly one of the two reports is itself a failure:
    the reports' shapes diverged (renamed section, dropped metric), which
    would otherwise let the guard pass vacuously.  Keys absent from both
    are fine — EXACT_KEYS/TIMING_KEYS span every benchmark this guard
    understands, and each report only carries its own sections.
    """
    for section, key in EXACT_KEYS:
        base = _lookup(baseline, section, key)
        new = _lookup(fresh, section, key)
        if base is None and new is None:
            continue
        if base is None or new is None:
            yield False, "%s.%s: present in only one report (baseline=%r fresh=%r)" % (
                section, key, base, new
            )
            continue
        ok = base == new
        yield ok, "%s.%s: baseline=%r fresh=%r%s" % (
            section, key, base, new, "" if ok else "  <-- DIVERGED"
        )
    for section, key in TIMING_KEYS:
        base = _lookup(baseline, section, key)
        new = _lookup(fresh, section, key)
        if base is None and new is None:
            continue
        if base is None or new is None:
            yield False, "%s.%s: present in only one report (baseline=%r fresh=%r)" % (
                section, key, base, new
            )
            continue
        ok = new <= base * tolerance
        yield ok, "%s.%s: baseline=%.4fs fresh=%.4fs (x%.2f, limit x%.2f)%s" % (
            section, key, base, new, new / base, tolerance,
            "" if ok else "  <-- REGRESSED"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="max allowed fresh/baseline ratio on fast-path timings",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if baseline.get("benchmark") != fresh.get("benchmark"):
        print("FAIL: comparing different benchmarks: %r vs %r"
              % (baseline.get("benchmark"), fresh.get("benchmark")))
        return 1

    failures = 0
    executed = 0
    for ok, message in compare(baseline, fresh, args.tolerance):
        print(("ok   " if ok else "FAIL ") + message)
        executed += 1
        failures += 0 if ok else 1
    if executed == 0:
        # An unknown benchmark shape must not pass silently.
        print("FAIL: no known parity keys found in %r — nothing was checked"
              % baseline.get("benchmark"))
        return 1
    if failures:
        print("%d of %d parity check(s) failed" % (failures, executed))
        return 1
    print("parity holds (%s, %d checks)" % (baseline.get("benchmark"), executed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
