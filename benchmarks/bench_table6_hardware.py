"""Table 6: hardware area/power of the pwl unit across precisions."""

import pytest

from repro.experiments.table6 import format_table6_experiment, run_table6
from repro.hardware.cost_model import Precision


@pytest.mark.benchmark(group="table6")
def test_table6_hardware_costs(benchmark):
    result = benchmark(run_table6)
    print()
    print(format_table6_experiment(result))
    # The paper's headline: INT8 saves ~81% area and ~79-80% power vs
    # FP32/INT32, and 16 entries cost ~1.7x area of 8 entries.
    assert 0.75 <= result.area_saving_vs_fp32 <= 0.88
    assert 0.75 <= result.area_saving_vs_int32 <= 0.88
    assert 0.72 <= result.power_saving_vs_fp32 <= 0.88
    assert 0.72 <= result.power_saving_vs_int32 <= 0.88
    assert 1.4 <= result.entry_area_ratio_int8 <= 2.0
    int8 = result.estimate(Precision.INT8, 8)
    assert int8.area_um2 == pytest.approx(961, rel=0.05)


@pytest.mark.benchmark(group="table6")
def test_verilog_generation_for_searched_lut(benchmark, approx_budget):
    """Generate RTL for a searched GELU LUT (the deployable artefact)."""
    from repro.core.search import GQALUT
    from repro.hardware.verilog import generate_pwl_verilog

    outcome = GQALUT.for_operator("gelu", num_entries=8, use_rm=True).search(
        generations=min(approx_budget.generations, 100),
        population_size=approx_budget.population_size,
        seed=approx_budget.seed,
    )
    lut = outcome.quantized_lut(scale=0.25)
    rtl = benchmark(generate_pwl_verilog, lut)
    assert "module" in rtl and "endmodule" in rtl
