"""Figure 2(b): breakpoint deviation of EXP under large vs small scales."""

import pytest

from repro.experiments.fig2 import format_fig2b, run_fig2b


@pytest.mark.benchmark(group="fig2b")
def test_fig2b_breakpoint_deviation(benchmark, approx_budget):
    result = benchmark.pedantic(
        run_fig2b,
        kwargs={"operator": "exp", "budget": approx_budget},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_fig2b(result))
    # The paper's observation: quantizing the same breakpoint under a larger
    # scaling factor moves it further and costs more local accuracy.
    assert result.deviation_large >= result.deviation_small
    assert result.error_large >= result.error_small * 0.5
