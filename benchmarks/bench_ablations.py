"""Ablation benchmarks for design choices called out in DESIGN.md.

Not a paper table; these quantify (a) what the genetic search buys over
non-search baselines, (b) what the FXP-aware fitness buys over the literal
Algorithm 1 fitness, and (c) the GA's runtime cost per search.
"""

import numpy as np
import pytest

from repro.baselines.chebyshev import chebyshev_pwl
from repro.baselines.uniform import uniform_pwl
from repro.core.config import default_config
from repro.core.search import GQALUT
from repro.experiments.protocol import average_mse


@pytest.mark.benchmark(group="ablation")
def test_ablation_search_vs_static_breakpoints(benchmark, approx_budget):
    """GQA-LUT vs uniform and Chebyshev breakpoints (no search)."""

    def run():
        out = {}
        for operator in ("gelu", "exp"):
            config = default_config(operator)
            fn = config.function()
            searched = GQALUT.for_operator(operator, 8, use_rm=True).search(
                generations=approx_budget.generations,
                population_size=approx_budget.population_size,
                seed=approx_budget.seed,
            ).pwl_fxp
            out[operator] = {
                "gqa-rm": average_mse(operator, searched),
                "uniform": average_mse(operator, uniform_pwl(fn, 8).to_fixed_point(5)),
                "chebyshev": average_mse(operator, chebyshev_pwl(fn, 8).to_fixed_point(5)),
            }
        return out

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for operator, values in results.items():
        print(operator, {k: "%.2e" % v for k, v in values.items()})
        assert values["gqa-rm"] <= values["uniform"] * 1.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_fxp_aware_fitness(benchmark, approx_budget):
    """FXP-aware fitness (default) vs the literal Algorithm 1 FP fitness."""

    def run():
        out = {}
        for aware in (True, False):
            outcome = GQALUT.for_operator(
                "gelu", 8, use_rm=True, fxp_aware_fitness=aware
            ).search(
                generations=approx_budget.generations,
                population_size=approx_budget.population_size,
                seed=approx_budget.seed,
            )
            out["fxp-aware" if aware else "fp-fitness"] = average_mse("gelu", outcome.pwl_fxp)
        return out

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print({k: "%.2e" % v for k, v in results.items()})
    assert results["fxp-aware"] > 0 and results["fp-fitness"] > 0


@pytest.mark.benchmark(group="ablation")
def test_search_runtime_single_operator(benchmark):
    """Wall-clock cost of one 8-entry GELU search at a fixed small budget."""

    def run():
        return GQALUT.for_operator("gelu", 8, use_rm=True).search(
            generations=50, population_size=30, seed=0
        )

    outcome = benchmark(run)
    assert outcome.pwl_fxp.num_entries == 8
