"""GA fitness-engine throughput benchmark (batched vs. legacy scoring).

Measures two things for the genetic breakpoint search:

1. **Fitness throughput** — evaluations/second of the population-batched
   :meth:`GridMSEFitness.batch_call` versus the scalar per-individual
   ``__call__`` loop, on identical populations (scores are asserted to be
   bit-identical).
2. **End-to-end search time** — a full seeded ``GQALUT.search`` under
   ``engine="batch"`` (dedup + cross-generation score cache + batched
   fitness) versus ``engine="legacy"`` (one fitness call per individual).
   Both engines share the same vectorized GA operators and random stream,
   so the searched breakpoints are asserted to be bit-identical; the timing
   difference is purely the scoring path.

Defaults follow Table 1 (GELU, 8-entry LUT, population 50, 500
generations).  Results are written to ``BENCH_ga_throughput.json`` at the
repository root so the performance trajectory is tracked across PRs; CI
runs a reduced-budget smoke pass (see ``--generations``/``--repeats``).

Usage::

    PYTHONPATH=src python benchmarks/bench_ga_throughput.py
    PYTHONPATH=src python benchmarks/bench_ga_throughput.py \
        --generations 25 --repeats 2 --output /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.fitness import GridMSEFitness
from repro.core.search import GQALUT
from repro.functions.registry import get_function

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ga_throughput.json"


def bench_fitness_throughput(
    operator: str, population_size: int, num_breakpoints: int, repeats: int, seed: int
) -> dict:
    """Evaluations/second of batched vs. scalar fitness on one population."""
    fn = get_function(operator)
    fitness = GridMSEFitness(fn, grid_step=0.01, frac_bits=5)
    rng = np.random.default_rng(seed)
    population = np.sort(
        rng.uniform(*fn.search_range, size=(population_size, num_breakpoints)), axis=1
    )

    batch_scores = fitness.batch_call(population)
    scalar_scores = np.array([fitness(row) for row in population])
    if not np.array_equal(batch_scores, scalar_scores):
        raise AssertionError("batched fitness diverged from the scalar path")

    def timed(fn_call) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn_call()
            best = min(best, time.perf_counter() - start)
        return best

    t_scalar = timed(lambda: [fitness(row) for row in population])
    t_batch = timed(lambda: fitness.batch_call(population))
    return {
        "population_size": population_size,
        "scalar_evals_per_sec": population_size / t_scalar,
        "batch_evals_per_sec": population_size / t_batch,
        "scalar_seconds": t_scalar,
        "batch_seconds": t_batch,
        "speedup": t_scalar / t_batch,
    }


def bench_search(
    operator: str,
    num_entries: int,
    generations: int,
    population_size: int,
    seed: int,
) -> dict:
    """End-to-end seeded search time, batch engine vs. legacy engine."""
    timings = {}
    outcomes = {}
    for engine in ("legacy", "batch"):
        searcher = GQALUT.for_operator(operator, num_entries=num_entries)
        start = time.perf_counter()
        outcomes[engine] = searcher.search(
            generations=generations,
            population_size=population_size,
            seed=seed,
            engine=engine,
        )
        timings[engine] = time.perf_counter() - start

    legacy, batch = outcomes["legacy"].ga_result, outcomes["batch"].ga_result
    identical = bool(
        np.array_equal(legacy.best_breakpoints, batch.best_breakpoints)
        and legacy.best_fitness == batch.best_fitness
    )
    if not identical:
        raise AssertionError("batch and legacy engines returned different results")
    return {
        "operator": operator,
        "num_entries": num_entries,
        "generations": generations,
        "population_size": population_size,
        "seed": seed,
        "legacy_seconds": timings["legacy"],
        "batch_seconds": timings["batch"],
        "speedup": timings["legacy"] / timings["batch"],
        "identical_results": identical,
        "evaluations": batch.evaluations,
        "fitness_calls": batch.fitness_calls,
        "cache_hits": batch.cache_hits,
        "best_fitness": batch.best_fitness,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--operator", default="gelu")
    parser.add_argument("--entries", type=int, default=8)
    parser.add_argument("--generations", type=int, default=500)
    parser.add_argument("--population", type=int, default=50)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--min-search-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) if the end-to-end speedup falls below this factor",
    )
    args = parser.parse_args(argv)

    fitness_stats = bench_fitness_throughput(
        args.operator, args.population, args.entries - 1, args.repeats, args.seed
    )
    search_stats = bench_search(
        args.operator, args.entries, args.generations, args.population, args.seed
    )

    report = {
        "benchmark": "ga_throughput",
        "config": {
            "operator": args.operator,
            "num_entries": args.entries,
            "generations": args.generations,
            "population_size": args.population,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "fitness": fitness_stats,
        "search": search_stats,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print("fitness throughput (%s, pop %d):" % (args.operator, args.population))
    print(
        "  scalar %10.0f evals/s   batch %10.0f evals/s   speedup %5.1fx"
        % (
            fitness_stats["scalar_evals_per_sec"],
            fitness_stats["batch_evals_per_sec"],
            fitness_stats["speedup"],
        )
    )
    print(
        "end-to-end search (%s, %d entries, %d generations, pop %d):"
        % (args.operator, args.entries, args.generations, args.population)
    )
    print(
        "  legacy %6.2fs   batch %6.2fs   speedup %5.1fx   (results identical: %s)"
        % (
            search_stats["legacy_seconds"],
            search_stats["batch_seconds"],
            search_stats["speedup"],
            search_stats["identical_results"],
        )
    )
    print(
        "  %d logical evaluations -> %d fitness calls (%d cache hits)"
        % (
            search_stats["evaluations"],
            search_stats["fitness_calls"],
            search_stats["cache_hits"],
        )
    )
    print("wrote %s" % args.output)

    if search_stats["speedup"] < args.min_search_speedup:
        print(
            "FAIL: speedup %.1fx below required %.1fx"
            % (search_stats["speedup"], args.min_search_speedup)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
