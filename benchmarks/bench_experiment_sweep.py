"""Experiment-sweep engine benchmark (deduplicated parallel vs. sequential).

The paper's evaluation requests 64 approximation cells across Table 3,
Fig. 2, Fig. 3 and the Table 4/5 fine-tuning at the default experiment
configurations — but only 30 of them are distinct (the figures and the
fine-tuning re-use Table 3 cells, and Fig. 2 repeats one of its own).  This
benchmark measures the orchestration layer introduced for that grid:

1. **Sequential baseline** — every experiment builds its own cells with the
   raw ``compute_approximation`` loop, exactly like the pre-engine runners:
   no sharing, 64 builds.
2. **Deduplicated parallel pass** — the union of all cells goes through one
   ``SweepEngine.run`` batch (duplicates collapse, the rest fan out over a
   process pool), then each experiment pulls its cells from the warm cache.
   Every cell is asserted bit-identical to the sequential baseline.
3. **Warm-cache rerun** — a fresh engine attached to the same on-disk
   artifact store answers the full union with zero GA / NN-LUT
   recomputation (asserted).

Results are written to ``BENCH_experiment_sweep.json`` at the repository
root so the performance trajectory is tracked across PRs; the default run
gates on a >= 2x wall-clock speedup (the dedup ratio alone guarantees it
even on a single core), and CI runs ``--smoke`` which checks every
correctness assertion at the quick budget without the speedup gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_experiment_sweep.py
    PYTHONPATH=src python benchmarks/bench_experiment_sweep.py \
        --smoke --output /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.experiments import ApproximationBudget, compute_approximation
from repro.experiments.artifacts import ArtifactCache, ArtifactStore
from repro.experiments.jobs import ApproximationJob, SweepEngine
from repro.experiments.run_all import all_experiment_jobs

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_experiment_sweep.json"


def select_budget(mode: str) -> ApproximationBudget:
    if mode == "paper":
        return ApproximationBudget.paper()
    if mode == "quick":
        return ApproximationBudget.quick()
    return ApproximationBudget(generations=150, population_size=50,
                               nn_lut_samples=20_000, nn_lut_iterations=2000, seed=0)


def bench_sequential(per_experiment: Dict[str, List[ApproximationJob]]) -> dict:
    """Per-experiment raw build loops: the pre-engine sequential baseline."""
    results: Dict[str, list] = {}
    timings: Dict[str, float] = {}
    start_all = time.perf_counter()
    for name, jobs in per_experiment.items():
        start = time.perf_counter()
        results[name] = [
            compute_approximation(job.operator, job.method, job.num_entries, job.budget)
            for job in jobs
        ]
        timings[name] = time.perf_counter() - start
    total = time.perf_counter() - start_all
    return {"seconds": total, "per_experiment_seconds": timings, "results": results}


def bench_parallel(
    per_experiment: Dict[str, List[ApproximationJob]],
    store_dir: Path,
    workers: int,
    run_dir: Optional[Path] = None,
) -> dict:
    """One deduplicated engine pass over the union, then per-experiment pulls.

    With ``run_dir`` the prefetch batch is journaled (durable, resumable);
    journaling never changes which cells build or what they produce, so
    the recorded numbers are comparable either way.
    """
    engine = SweepEngine(cache=ArtifactCache(store=ArtifactStore(store_dir)))
    union = [job for jobs in per_experiment.values() for job in jobs]

    start = time.perf_counter()
    engine.run(union, workers=workers, run_dir=run_dir)
    prefetch_seconds = time.perf_counter() - start
    prefetch = engine.last_run

    results: Dict[str, list] = {}
    start = time.perf_counter()
    for name, jobs in per_experiment.items():
        built = engine.run(jobs)
        results[name] = [built[job.key] for job in jobs]
    pull_seconds = time.perf_counter() - start

    return {
        "seconds": prefetch_seconds + pull_seconds,
        "prefetch_seconds": prefetch_seconds,
        "pull_seconds": pull_seconds,
        "workers": workers,
        "requested_cells": prefetch.requested,
        "unique_cells": prefetch.builds + prefetch.cache_hits,
        "cross_experiment_duplicates": prefetch.deduped,
        "builds": prefetch.builds,
        "pull_cache_hits": engine.stats.memory_hits,
        "results": results,
    }


def bench_warm(per_experiment: Dict[str, List[ApproximationJob]], store_dir: Path) -> dict:
    """A fresh engine over the same store must answer without recomputing."""
    engine = SweepEngine(cache=ArtifactCache(store=ArtifactStore(store_dir)))
    union = [job for jobs in per_experiment.values() for job in jobs]
    start = time.perf_counter()
    engine.run(union)
    seconds = time.perf_counter() - start
    stats = engine.last_run
    if stats.builds != 0:
        raise AssertionError(
            "warm-cache run recomputed %d cells (expected 0)" % stats.builds
        )
    return {
        "seconds": seconds,
        "builds": stats.builds,
        "disk_hits": stats.disk_hits,
        "deduped": stats.deduped,
    }


def check_identical(sequential: dict, parallel: dict) -> bool:
    """Every cell of every experiment must match the baseline bitwise."""
    for name, baseline in sequential["results"].items():
        engine_results = parallel["results"][name]
        if len(baseline) != len(engine_results):
            raise AssertionError("cell count mismatch for %s" % name)
        for index, (a, b) in enumerate(zip(baseline, engine_results)):
            if not (
                np.array_equal(a.breakpoints, b.breakpoints)
                and np.array_equal(a.slopes, b.slopes)
                and np.array_equal(a.intercepts, b.intercepts)
            ):
                raise AssertionError(
                    "engine result diverged from sequential path: %s[%d]" % (name, index)
                )
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", choices=("quick", "medium", "paper"), default="medium")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count for the parallel pass (default: cpu count)")
    parser.add_argument("--artifact-dir", type=Path, default=None,
                        help="persistent artifact store (default: a throwaway temp dir)")
    parser.add_argument("--run-dir", type=Path, default=None,
                        help="journal the parallel pass into this durable run "
                             "directory (resumable; recorded numbers unchanged)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) below this sequential/parallel factor "
             "(default 2.0; disabled under --smoke)",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="quick budget, no speedup gate (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        budget_mode = "quick"
        min_speedup = args.min_speedup if args.min_speedup is not None else 0.0
    else:
        budget_mode = args.budget
        min_speedup = args.min_speedup if args.min_speedup is not None else 2.0
    budget = select_budget(budget_mode)
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)

    per_experiment = all_experiment_jobs(budget)
    requested = sum(len(jobs) for jobs in per_experiment.values())
    unique = len({job.key for jobs in per_experiment.values() for job in jobs})
    print("experiment grid: %d requested cells, %d unique" % (requested, unique))

    if args.artifact_dir is not None:
        store_dir, cleanup = args.artifact_dir, False
    else:
        store_dir, cleanup = Path(tempfile.mkdtemp(prefix="repro-artifacts-")), True

    try:
        sequential = bench_sequential(per_experiment)
        parallel = bench_parallel(per_experiment, store_dir, workers,
                                  run_dir=args.run_dir)
        identical = check_identical(sequential, parallel)
        warm = bench_warm(per_experiment, store_dir)
    finally:
        if cleanup:
            shutil.rmtree(store_dir, ignore_errors=True)

    speedup = sequential["seconds"] / parallel["seconds"]
    report = {
        "benchmark": "experiment_sweep",
        "config": {
            "budget": budget_mode,
            "generations": budget.generations,
            "nn_lut_iterations": budget.nn_lut_iterations,
            "workers": workers,
            "seed": budget.seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "cells": {
            "requested": requested,
            "unique": unique,
            "cross_experiment_duplicates": requested - unique,
        },
        "sequential": {
            "seconds": sequential["seconds"],
            "per_experiment_seconds": sequential["per_experiment_seconds"],
        },
        "parallel": {key: value for key, value in parallel.items() if key != "results"},
        "warm": warm,
        "speedup": speedup,
        "identical_results": identical,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print("sequential per-experiment baseline: %6.2fs  (%d builds)"
          % (sequential["seconds"], requested))
    print("deduplicated parallel pass:         %6.2fs  (%d builds, %d duplicate cells "
          "answered from cache, %d workers)"
          % (parallel["seconds"], parallel["builds"],
             parallel["cross_experiment_duplicates"], workers))
    print("warm-cache rerun:                   %6.2fs  (%d builds, %d disk hits)"
          % (warm["seconds"], warm["builds"], warm["disk_hits"]))
    print("speedup %.2fx   (results identical: %s)" % (speedup, identical))
    print("wrote %s" % args.output)

    if speedup < min_speedup:
        print("FAIL: speedup %.2fx below required %.2fx" % (speedup, min_speedup))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
