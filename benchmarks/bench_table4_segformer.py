"""Table 4: fine-tuning mIoU of the MiniSegformer substitute."""

import pytest

from repro.experiments.table4 import format_table4, run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_segformer_finetune(benchmark, approx_budget, finetune_budget):
    result = benchmark.pedantic(
        run_table4,
        kwargs={
            "budget": finetune_budget,
            "approx_budget": approx_budget,
            "include_individual": True,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table4(result))
    # Structural expectations that hold at any budget: a baseline, one row
    # per (method, replacement), and bounded degradations.
    assert 0.0 <= result.baseline_miou <= 1.0
    assert len(result.rows) == 3 * (len(result.operators) + 1)
    for row in result.rows:
        assert 0.0 <= row.miou <= 1.0
        # Replacing operators by an 8-entry pwl must not collapse the model.
        assert row.degradation < 0.5
