"""Compiled-inference benchmark (traced graph executor vs. eager autograd).

Measures the capture → optimize → execute pipeline of :mod:`repro.graph`
on the paper's two deployed model families, each with every replaceable
operator swapped for its 8-entry pwl and INT8-quantized Linear layers:

1. **Single-image predict** — ``model.predict`` under ``engine="eager"``
   (dynamic graph rebuilt per call) vs. ``engine="compiled"`` (optimised
   plan replayed through the buffer-reuse executor), for MiniSegformer and
   MiniEfficientViT.  Before timing, predictions over a seeded evaluation
   set are asserted bit-identical across **four** paths: eager and
   compiled under both the dense and the legacy pwl engines.  The compiled
   speedup is the headline gated by ``--min-predict-speedup``.
2. **Micro-batched serving** — a :class:`repro.serve.BatchingServer` burst
   (single-image submissions fused into padded batches, one compiled call
   per batch) vs. sequential eager requests, asserting bit-identical
   responses and that batching actually occurred.

The report carries a SHA-256 checksum of the compiled predictions over the
seeded evaluation set; ``check_bench_parity.py`` compares it exactly
against the recorded baseline, so semantic drift between eager and
compiled (or across refactors) fails the build even when every in-run
parity flag still passes.

Results are written to ``BENCH_compiled_inference.json`` at the repository
root; CI runs the default budget and gates through check_bench_parity.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_inference.py
    PYTHONPATH=src python benchmarks/bench_compiled_inference.py \
        --smoke --output /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.graph import CompiledModel, optimize, plan_memory, trace
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniEfficientViT, MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.serve import BatchingServer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compiled_inference.json"

MODELS = (
    ("segformer", MiniSegformer, ("exp", "gelu", "div", "rsqrt")),
    ("efficientvit", MiniEfficientViT, ("hswish", "div")),
)


def build_approximation(operator: str, num_entries: int = 8, frac_bits: int = 5):
    """A deterministic uniform-breakpoint FXP pwl (no search needed here)."""
    fn = get_function(operator)
    pwl = fit_pwl(fn.fn, uniform_breakpoints(*fn.search_range, num_entries), fn.search_range)
    return pwl.to_fixed_point(frac_bits)


def build_model(model_cls, operators, model_config, pwl_engine: str):
    suite = PWLSuite(
        approximations={op: build_approximation(op) for op in operators},
        replace=set(operators),
        engine=pwl_engine,
    )
    model = model_cls(model_config, suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


def _timed(fn_call, repeats: int, inner: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn_call()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def bench_predict(name, model_cls, operators, model_config, eval_images,
                  repeats: int, inner: int) -> dict:
    """Eager vs. compiled predict; 4-way bit-parity over the eval set."""
    single = eval_images[:1]
    predictions = {}
    models = {}
    for pwl_engine in ("dense", "legacy"):
        model = build_model(model_cls, operators, model_config, pwl_engine)
        # First call initialises the LSQ quantizers from the evaluation
        # set — identically for every path.
        predictions[("eager", pwl_engine)] = model.predict(eval_images, engine="eager")
        predictions[("compiled", pwl_engine)] = model.predict(eval_images, engine="compiled")
        models[pwl_engine] = model
    reference = predictions[("eager", "dense")]
    identical = all(np.array_equal(reference, p) for p in predictions.values())
    if not identical:
        raise AssertionError("%s: compiled/eager predictions diverged" % name)

    model = models["dense"]
    graph = trace(model, single)
    optimized = optimize(graph)
    plan = plan_memory(optimized)

    model.predict(single, engine="compiled")  # warm the (1, H, W, C) plan
    t_eager = _timed(lambda: model.predict(single, engine="eager"), repeats, inner)
    t_compiled = _timed(lambda: model.predict(single, engine="compiled"), repeats, inner)
    checksum = hashlib.sha256(
        np.ascontiguousarray(reference, dtype=np.int64).tobytes()
    ).hexdigest()
    return {
        "model": model_cls.__name__,
        "image_size": model_config.image_size,
        "eval_images": int(eval_images.shape[0]),
        "traced_nodes": len(graph.nodes),
        "optimized_nodes": len(optimized.nodes),
        "fused_lookups": sum(
            node.op in ("dense_lookup", "multirange_lookup") for node in optimized.nodes
        ),
        "buffer_slots": plan.num_slots,
        "peak_live_buffers": plan.peak_live,
        "eager_seconds": t_eager,
        "compiled_seconds": t_compiled,
        "speedup": t_eager / t_compiled,
        "identical_results": True,
        "predictions_sha256": checksum,
    }


def bench_serving(model_cls, operators, model_config, num_requests: int,
                  max_batch: int) -> dict:
    """Sequential eager requests vs. a micro-batched compiled burst."""
    model = build_model(model_cls, operators, model_config, "dense")
    rng = np.random.default_rng(7)
    images = [
        rng.normal(scale=1.0, size=(model_config.image_size, model_config.image_size, 3))
        for _ in range(num_requests)
    ]

    start = time.perf_counter()
    eager = [model.predict(image[None], engine="eager")[0] for image in images]
    eager_seconds = time.perf_counter() - start

    with BatchingServer(model, max_batch=max_batch, max_wait_ms=1.0, engine="compiled") as server:
        start = time.perf_counter()
        served = server.predict_many(images)
        served_seconds = time.perf_counter() - start
        stats = server.stats()

    identical = all(np.array_equal(a, b) for a, b in zip(eager, served))
    if not identical:
        raise AssertionError("served responses diverged from eager predictions")
    if stats.batches >= num_requests:
        raise AssertionError("no micro-batching occurred (one batch per request)")
    return {
        "model": model_cls.__name__,
        "requests": num_requests,
        "batches": stats.batches,
        "mean_batch_size": stats.mean_batch_size,
        "padded_rows": stats.padded_rows,
        "eager_seconds": eager_seconds,
        "served_seconds": served_seconds,
        "eager_rps": num_requests / eager_seconds,
        "served_rps": num_requests / served_seconds,
        "speedup": eager_seconds / served_seconds,
        "identical_results": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--inner", type=int, default=40,
                        help="predict calls per timing repeat")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budget: tiny models, few requests, no speedup gate",
    )
    parser.add_argument(
        "--min-predict-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if either model's compiled predict speedup falls "
        "below this factor (default 2.0 for full runs, disabled with --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        model_config = ModelConfig(image_size=16, embed_dim=16, depth=1)
        repeats, inner = 3, 10
        num_requests, max_batch = 24, 8
        min_speedup = args.min_predict_speedup or 0.0
    else:
        model_config = ModelConfig()  # the Table 4/5 miniature defaults
        repeats, inner = args.repeats, args.inner
        num_requests, max_batch = 64, 16
        # The compiled plan lands around 2.5-3x on single-image predict in
        # this container (Python dispatch dominates eager at these model
        # sizes); 2.0 gates regressions without flaking on scheduler noise.
        min_speedup = 2.0 if args.min_predict_speedup is None else args.min_predict_speedup

    rng = np.random.default_rng(args.seed)
    eval_images = rng.normal(
        size=(4, model_config.image_size, model_config.image_size, 3)
    )

    report = {
        "benchmark": "compiled_inference",
        "config": {
            "image_size": model_config.image_size,
            "embed_dim": model_config.embed_dim,
            "depth": model_config.depth,
            "repeats": repeats,
            "inner": inner,
            "requests": num_requests,
            "max_batch": max_batch,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }

    failures = []
    for section, model_cls, operators in MODELS:
        stats = bench_predict(
            section, model_cls, operators, model_config, eval_images, repeats, inner
        )
        report["%s_predict" % section] = stats
        print(
            "%-22s eager %7.3fms   compiled %7.3fms   speedup %4.2fx   "
            "(%d -> %d nodes, %d fused, %d/%d buffers)"
            % (
                stats["model"],
                1e3 * stats["eager_seconds"],
                1e3 * stats["compiled_seconds"],
                stats["speedup"],
                stats["traced_nodes"],
                stats["optimized_nodes"],
                stats["fused_lookups"],
                stats["peak_live_buffers"],
                stats["buffer_slots"],
            )
        )
        if stats["speedup"] < min_speedup:
            failures.append(
                "%s compiled predict speedup %.2fx below required %.2fx"
                % (stats["model"], stats["speedup"], min_speedup)
            )

    serving = bench_serving(MODELS[0][1], MODELS[0][2], model_config, num_requests, max_batch)
    report["serving"] = serving
    print(
        "serving (%d requests)  eager %6.1f req/s   batched %6.1f req/s   "
        "speedup %4.2fx   (%d batches, mean %.1f)"
        % (
            serving["requests"],
            serving["eager_rps"],
            serving["served_rps"],
            serving["speedup"],
            serving["batches"],
            serving["mean_batch_size"],
        )
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)

    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
