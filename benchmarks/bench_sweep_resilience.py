"""Sweep-resilience benchmark: SIGKILL-resume and scrub-heal SLOs.

Two chaos phases over the durable sweep machinery (PR 8), each gated on an
all-or-nothing semantic flag rather than a timing:

1. **kill_resume** — a coordinator child process runs a journaled pool
   sweep (its builds slowed by an injected delay so the parent reliably
   catches it mid-flight) and is SIGKILLed after the journal shows
   progress.  A fresh engine then resumes from the ``run_dir``:

   * ``zero_rebuilds`` — no cell the dead coordinator had journaled as
     ``done`` was rebuilt (the resume's build count is bounded by the
     remaining cells);
   * ``identical_results`` — every resumed artifact is bit-identical to
     an uninterrupted run's;
   * ``resume_seconds`` — journal replay + finishing the remaining cells
     (the only timing the parity guard gates).

2. **scrub** — one artifact gets a bit flipped in place.  ``scrub()``
   must detect it (``detected``), move it aside, and the next access must
   self-heal by recomputing (``healed`` — bit-identical to the original);
   a second scrub proves the store is clean again (``post_heal_corrupt``
   == 0).

Results are written to ``BENCH_sweep_resilience.json`` at the repository
root; ``check_bench_parity.py`` gates the semantic flags exactly and
``resume_seconds`` within noise.  The default run fails (exit 1) if any
SLO flag is false; ``--smoke`` shrinks the grid for CI but keeps every
assertion.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_resilience.py
    PYTHONPATH=src python benchmarks/bench_sweep_resilience.py \
        --smoke --output /tmp/resilience.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.experiments import ApproximationBudget, ApproximationJob, approximation_jobs
from repro.experiments.artifacts import ArtifactCache, ArtifactStore
from repro.experiments.jobs import SweepEngine

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep_resilience.json"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

# The coordinator the kill phase SIGKILLs: a durable pool sweep whose
# builds carry an injected delay, propagated to the workers via the env.
_COORDINATOR = """\
import sys
from repro.experiments.jobs import SweepEngine, approximation_jobs
from repro.experiments.methods import ApproximationBudget
from repro.reliability import FaultPlan, FaultSpec, inject

run_dir, delay = sys.argv[1], float(sys.argv[2])
operators = sys.argv[3].split(",")
methods = sys.argv[4].split(",")
plan = FaultPlan(specs=(
    FaultSpec(site="sweep.build:*", delay_always=True, delay_seconds=delay),
))
jobs = approximation_jobs(operators, methods, budget=ApproximationBudget.quick())
engine = SweepEngine(run_dir=run_dir)
with inject(plan, propagate=True):
    engine.run_manifest(jobs, workers=2)
"""


def pwl_equal(a, b) -> bool:
    return (
        np.array_equal(a.breakpoints, b.breakpoints)
        and np.array_equal(a.slopes, b.slopes)
        and np.array_equal(a.intercepts, b.intercepts)
    )


def journal_done_count(run_dir: Path) -> int:
    journal = run_dir / "journal.jsonl"
    if not journal.exists():
        return 0
    return sum(
        1 for line in journal.read_text().splitlines()
        if line and json.loads(line).get("type") == "done"
    )


def bench_kill_resume(
    operators: List[str], methods: List[str], work_dir: Path, delay: float
) -> dict:
    budget = ApproximationBudget.quick()
    jobs = approximation_jobs(operators, methods, budget=budget)
    unique = len({job.key for job in jobs})
    run_dir = work_dir / "run"
    script = work_dir / "coordinator.py"
    script.write_text(_COORDINATOR)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    start = time.perf_counter()
    child = subprocess.Popen(
        [
            sys.executable, str(script), str(run_dir), str(delay),
            ",".join(operators), ",".join(methods),
        ],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 180.0
        while journal_done_count(run_dir) < 1:
            if child.poll() is not None:
                break  # finished before the kill: resume still must hold
            if time.monotonic() > deadline:
                raise RuntimeError("coordinator made no progress within 180s")
            time.sleep(0.01)
    finally:
        killed = child.poll() is None
        if killed:
            os.killpg(child.pid, signal.SIGKILL)
        child.wait()
    kill_seconds = time.perf_counter() - start

    done_before = journal_done_count(run_dir)

    resume_engine = SweepEngine()
    start = time.perf_counter()
    resumed = resume_engine.resume(run_dir, workers=0)
    resume_seconds = time.perf_counter() - start
    resume_engine.close()

    clean = SweepEngine().run(jobs, workers=0)
    identical = (
        resumed.ok
        and set(resumed.results) == set(clean)
        and all(pwl_equal(resumed.results[key], clean[key]) for key in clean)
    )
    builds_after = resumed.stats.builds
    zero_rebuilds = builds_after <= unique - done_before

    return {
        "cells": unique,
        "injected_delay_seconds": delay,
        "killed_mid_run": killed,
        "done_before_kill": done_before,
        "builds_after_resume": builds_after,
        "cache_hits_after_resume": resumed.stats.cache_hits,
        "kill_seconds": kill_seconds,
        "resume_seconds": resume_seconds,
        "zero_rebuilds": zero_rebuilds,
        "identical_results": identical,
    }


def bench_scrub(work_dir: Path) -> dict:
    budget = ApproximationBudget.quick()
    job = ApproximationJob("gelu", "gqa-rm", 8, budget)
    store_dir = work_dir / "store"
    store = ArtifactStore(store_dir)
    engine = SweepEngine(cache=ArtifactCache(store=store))
    original = engine.build(job)

    path = store.path_for(job.key)
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    path.write_bytes(bytes(payload))

    start = time.perf_counter()
    report = store.scrub()
    scrub_seconds = time.perf_counter() - start
    detected = report.corrupt

    healer = SweepEngine(cache=ArtifactCache(store=ArtifactStore(store_dir)))
    start = time.perf_counter()
    rebuilt = healer.build(job)
    heal_seconds = time.perf_counter() - start
    healed = int(healer.stats.builds == 1 and pwl_equal(rebuilt, original))

    post = ArtifactStore(store_dir).scrub()

    return {
        "detected": detected,
        "quarantined": len(report.quarantined),
        "healed": healed,
        "post_heal_corrupt": post.corrupt,
        "post_heal_ok": post.ok,
        "scrub_seconds": scrub_seconds,
        "heal_seconds": heal_seconds,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--delay", type=float, default=0.5,
                        help="injected per-build delay in the killed coordinator")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller grid for CI; every SLO still asserted")
    args = parser.parse_args(argv)

    if args.smoke:
        operators, methods = ["exp", "gelu"], ["nn-lut", "gqa-wo-rm"]
    else:
        operators, methods = ["exp", "gelu", "div", "rsqrt"], ["nn-lut", "gqa-wo-rm"]

    work_dir = Path(tempfile.mkdtemp(prefix="repro-resilience-"))
    try:
        kill_resume = bench_kill_resume(operators, methods, work_dir, args.delay)
        scrub = bench_scrub(work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    report = {
        "benchmark": "sweep_resilience",
        "config": {
            "smoke": args.smoke,
            "operators": operators,
            "methods": methods,
            "delay_seconds": args.delay,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "kill_resume": kill_resume,
        "scrub": scrub,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print("kill+resume: %d cells, %d done before SIGKILL, %d built on resume "
          "(%.2fs) — zero_rebuilds=%s identical=%s"
          % (kill_resume["cells"], kill_resume["done_before_kill"],
             kill_resume["builds_after_resume"], kill_resume["resume_seconds"],
             kill_resume["zero_rebuilds"], kill_resume["identical_results"]))
    print("scrub: detected=%d healed=%d post_heal_corrupt=%d (scrub %.3fs)"
          % (scrub["detected"], scrub["healed"], scrub["post_heal_corrupt"],
             scrub["scrub_seconds"]))
    print("wrote %s" % args.output)

    slos = (
        kill_resume["zero_rebuilds"],
        kill_resume["identical_results"],
        scrub["detected"] == 1,
        scrub["healed"] == 1,
        scrub["post_heal_corrupt"] == 0,
    )
    if not all(slos):
        print("FAIL: a resilience SLO was violated")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
