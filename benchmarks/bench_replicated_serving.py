"""Replicated serving benchmark: throughput scaling and chaos SLOs.

Drives a :class:`repro.serve.ReplicatedServer` through the supervisor
tier end to end:

1. **Throughput vs replicas** — closed-loop batch load at each fleet
   size.  Recorded for the scaling curve but never gated: the container
   is frequently single-core, where extra replicas cannot help.
2. **Kill SLO** — sustained single-image load while the ``replica.kill``
   seam SIGKILL-crashes a replica mid-batch.  Every admitted request must
   still resolve (zero dropped) and every response must stay bit-identical
   to the eager reference (zero corrupted) — the supervisor re-dispatches
   the dead replica's in-flight batch.  p99 latency over the incident is
   the tolerance-gated timing claim.
3. **Swap SLO** — sustained load while ``swap_state`` rolls a new
   checkpoint across the fleet replica by replica.  Zero dropped, and
   every mid-swap response must equal *either* the old or the new model's
   answer — never a mix — with the fleet fully on the new weights after.

Semantic outcomes (``zero_dropped``, ``identical_results``,
``no_mixed_responses``, ``identical_after_swap``) are exact-parity keys;
the incident p99s are tolerance-gated timing keys.

Results are written to ``BENCH_replicated_serving.json`` at the
repository root::

    PYTHONPATH=src python benchmarks/bench_replicated_serving.py
    PYTHONPATH=src python benchmarks/bench_replicated_serving.py --smoke --output /tmp/r.json
"""

from __future__ import annotations

import argparse
import json
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.reliability import FaultPlan, FaultSpec, RetryPolicy, inject
from repro.serve import ReplicatedServer

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_replicated_serving.json"
)

OPERATORS = ("exp", "gelu", "div", "rsqrt")

# Fast supervisor knobs so the chaos incidents resolve in benchmark time.
FAST = dict(
    max_wait_ms=1.0,
    heartbeat_ms=40.0,
    restart_policy=RetryPolicy(base_delay=0.01, multiplier=1.0, jitter=0.0),
)


def build_model(model_config: ModelConfig):
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(model_config, suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


def make_images(model_config: ModelConfig, count: int, seed: int):
    rng = np.random.default_rng(seed)
    size = model_config.image_size
    return [rng.normal(size=(size, size, 3)) for _ in range(count)]


def perturbed_head_state(model, scale: float = 7.0):
    """A valid new checkpoint whose predictions visibly differ."""
    state = dict(model.state_dict())
    key = next(name for name in state if "head" in name and name.endswith("bias"))
    state[key] = state[key] + np.arange(state[key].size, dtype=np.float64) * scale
    return state


def _percentiles_seconds(samples):
    if not samples:
        return {"p50_seconds": 0.0, "p95_seconds": 0.0, "p99_seconds": 0.0}
    p50, p95, p99 = np.percentile(
        np.asarray(samples, dtype=np.float64), (50.0, 95.0, 99.0)
    )
    return {
        "p50_seconds": float(p50),
        "p95_seconds": float(p95),
        "p99_seconds": float(p99),
    }


def bench_throughput(model, model_config, fleet_sizes, requests: int) -> dict:
    """Closed-loop throughput at each fleet size (recorded, never gated)."""
    images = make_images(model_config, 16, seed=1)
    batch = [images[i % len(images)] for i in range(requests)]
    levels = []
    for replicas in fleet_sizes:
        with ReplicatedServer(
            model, replicas=replicas, max_batch=8, **FAST
        ) as server:
            server.predict_many(images[:4], timeout=120.0)  # warm every path
            start = time.perf_counter()
            server.predict_many(batch, timeout=300.0)
            elapsed = time.perf_counter() - start
        levels.append(
            {
                "replicas": replicas,
                "requests": requests,
                "seconds": elapsed,
                "images_per_second": requests / elapsed,
            }
        )
        print(
            "throughput  replicas=%d   %6.1f img/s   (%d requests in %.2fs)"
            % (replicas, levels[-1]["images_per_second"], requests, elapsed)
        )
    return {"levels": levels}


class _Pounder:
    """Background single-image load; records (image_index, result, latency)."""

    def __init__(self, server, images):
        self.server = server
        self.images = images
        self.records = []
        self.errors = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        index = 0
        while not self._stop.is_set():
            image_index = index % len(self.images)
            start = time.perf_counter()
            try:
                result = self.server.predict(self.images[image_index], timeout=120.0)
            except Exception as error:  # noqa: BLE001 — any drop is the finding
                self.errors.append(repr(error))
            else:
                self.records.append(
                    (image_index, result, time.perf_counter() - start)
                )
            index += 1

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=180.0)


def _wait_until(predicate, timeout: float = 60.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def bench_kill(model, model_config, replicas: int) -> dict:
    """SIGKILL a replica mid-batch under load: nothing dropped or corrupted."""
    images = make_images(model_config, 8, seed=2)
    reference = [model.predict(im[None], engine="eager")[0] for im in images]
    plan = FaultPlan(specs=(FaultSpec(site="replica.kill:0", fail_calls=(1,)),))
    with inject(plan):  # installed before the fork so workers inherit it
        with ReplicatedServer(
            model, replicas=replicas, max_batch=4, **FAST
        ) as server:
            server.predict_many(images[:2], timeout=120.0)
            with _Pounder(server, images) as pounder:
                died = _wait_until(
                    lambda: server.health()["supervisor"]["replica_deaths"] >= 1
                )
                recovered = _wait_until(
                    lambda: sum(
                        entry["state"] == "healthy"
                        for entry in server.health()["replicas"]
                    )
                    == replicas
                )
                time.sleep(0.2)  # a little steady-state traffic post-recovery
            health = server.health()
    identical = all(
        np.array_equal(result, reference[image_index])
        for image_index, result, _ in pounder.records
    )
    latencies = [latency for _, _, latency in pounder.records]
    return {
        "replicas": replicas,
        "requests": len(pounder.records),
        "replica_died": bool(died),
        "recovered": bool(recovered),
        "dropped": len(pounder.errors),
        "zero_dropped": not pounder.errors,
        "identical_results": bool(identical and pounder.records),
        "redispatches": health["supervisor"]["redispatches"],
        "restarts": health["supervisor"]["restarts"],
        **_percentiles_seconds(latencies),
    }


def bench_swap(model, model_config, replicas: int) -> dict:
    """Rolling hot-swap under load: old-or-new responses, never mixed."""
    images = make_images(model_config, 8, seed=3)
    old_state = model.state_dict()
    old_reference = [model.predict(im[None], engine="eager")[0] for im in images]
    new_state = perturbed_head_state(model)
    try:
        with ReplicatedServer(
            model, replicas=replicas, max_batch=4, canary=images[0], **FAST
        ) as server:
            server.predict_many(images[:2], timeout=120.0)
            with _Pounder(server, images) as pounder:
                time.sleep(0.1)  # some pre-swap traffic
                swap_started = time.perf_counter()
                swap_report = server.swap_state(new_state)
                swap_seconds = time.perf_counter() - swap_started
                time.sleep(0.1)  # some post-swap traffic
            # The reference model now carries the new weights.
            new_reference = [
                model.predict(im[None], engine="eager")[0] for im in images
            ]
            after = server.predict_many(images, timeout=120.0)
    finally:
        model.load_state_dict(old_state, strict=True)
    mixed = sum(
        not (
            np.array_equal(result, old_reference[image_index])
            or np.array_equal(result, new_reference[image_index])
        )
        for image_index, result, _ in pounder.records
    )
    identical_after = all(
        np.array_equal(got, want) for got, want in zip(after, new_reference)
    )
    latencies = [latency for _, _, latency in pounder.records]
    return {
        "replicas": replicas,
        "requests": len(pounder.records),
        "swapped": swap_report["swapped"],
        "model_generation": swap_report["model_generation"],
        "swap_seconds": swap_seconds,
        "dropped": len(pounder.errors),
        "zero_dropped": not pounder.errors,
        "mixed_responses": mixed,
        "no_mixed_responses": mixed == 0,
        "identical_after_swap": bool(identical_after),
        **_percentiles_seconds(latencies),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced budget: tiny model, small fleet")
    args = parser.parse_args(argv)

    if args.smoke:
        model_config = ModelConfig(image_size=16, embed_dim=16, depth=1)
        fleet_sizes, requests, chaos_replicas = (1, 2), 32, 2
    else:
        model_config = ModelConfig(image_size=16, embed_dim=16, depth=1)
        fleet_sizes, requests, chaos_replicas = (1, 2, 4), 96, 2

    model = build_model(model_config)
    # One eager call initialises the LSQ quantizers before any fork, so
    # every replica shares identical frozen scales — the precondition for
    # bit-identical responses regardless of which replica answers.
    model.predict(np.random.default_rng(0).normal(
        size=(1, model_config.image_size, model_config.image_size, 3)))

    report = {
        "benchmark": "replicated_serving",
        "config": {
            "image_size": model_config.image_size,
            "embed_dim": model_config.embed_dim,
            "depth": model_config.depth,
            "fleet_sizes": list(fleet_sizes),
            "requests": requests,
            "chaos_replicas": chaos_replicas,
            "smoke": bool(args.smoke),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }

    report["throughput"] = bench_throughput(
        model, model_config, fleet_sizes, requests
    )

    kill = bench_kill(model, model_config, chaos_replicas)
    report["kill"] = kill
    print(
        "kill: %d requests over the incident   dropped=%d   identical=%s   "
        "p99 %6.1fms   (died=%s recovered=%s redispatches=%d)"
        % (kill["requests"], kill["dropped"], kill["identical_results"],
           1e3 * kill["p99_seconds"], kill["replica_died"], kill["recovered"],
           kill["redispatches"])
    )

    swap = bench_swap(model, model_config, chaos_replicas)
    report["swap"] = swap
    print(
        "swap: %d requests over the roll   dropped=%d   mixed=%d   "
        "after-swap identical=%s   p99 %6.1fms   (%d promoted in %.2fs)"
        % (swap["requests"], swap["dropped"], swap["mixed_responses"],
           swap["identical_after_swap"], 1e3 * swap["p99_seconds"],
           swap["swapped"], swap["swap_seconds"])
    )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)

    failures = []
    if not kill["replica_died"]:
        failures.append("the kill seam never fired — nothing was measured")
    if not kill["recovered"]:
        failures.append("the fleet did not return to full health after the kill")
    if not kill["zero_dropped"]:
        failures.append("requests were dropped during the replica kill")
    if not kill["identical_results"]:
        failures.append("responses diverged from eager during the replica kill")
    if not swap["zero_dropped"]:
        failures.append("requests were dropped during the rolling swap")
    if not swap["no_mixed_responses"]:
        failures.append("a mid-swap response matched neither old nor new model")
    if not swap["identical_after_swap"]:
        failures.append("post-swap responses diverged from the new reference")
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
