"""Figure 2(a): GELU 8-entry MSE vs scaling factor for all three methods."""

import pytest

from repro.experiments.fig2 import format_fig2a, run_fig2a


@pytest.mark.benchmark(group="fig2a")
def test_fig2a_gelu_mse_vs_scale(benchmark, approx_budget):
    result = benchmark.pedantic(
        run_fig2a,
        kwargs={"operator": "gelu", "num_entries": 8, "budget": approx_budget},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_fig2a(result))
    # Structural checks: one sweep per method, large scales contribute a
    # substantial share of the total error (the paper's motivation).
    assert set(result.sweeps) == {"nn-lut", "gqa-wo-rm", "gqa-rm"}
    assert result.large_scale_share["gqa-wo-rm"] > 0.3
    # GQA-LUT w/ RM beats NN-LUT on average (the headline of the figure).
    assert result.improvement_over("nn-lut", "gqa-rm") > 1.0
