"""Serving benchmark: latency/shed curves under rising offered load.

Drives a :class:`repro.serve.BatchingServer` through the reliability tier
end to end:

1. **Load ladder** — an open-loop generator submits single-image requests
   at a paced offered RPS, doubling the rate level by level until the
   server saturates (achieved throughput falls measurably short of
   offered, or admission control starts shedding).  Each level reports
   achieved RPS, client-observed p50/p95/p99 latency, and the shed rate.
2. **Latency** — the lowest (uncontended) level's percentiles, gated by
   ``check_bench_parity.py`` as within-noise timings.
3. **Shedding** — an unpaced burst against a deliberately tiny admission
   queue: the queue depth must stay bounded by the limit and the overflow
   must be shed with ``QueueFullError`` (never queued, never hung).
4. **Degradation** — the same traffic with an injected trace failure
   (``compiled.trace`` fails always): every response must stay
   bit-identical to the eager reference while the server counts the
   fallbacks.

Semantic outcomes (``identical_results``, ``bounded``) are exact-parity
keys; the latency percentiles are tolerance-gated timing keys.

Results are written to ``BENCH_serving.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --output /tmp/s.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.pwl import fit_pwl, uniform_breakpoints
from repro.functions.registry import get_function
from repro.nn.approx import PWLSuite
from repro.nn.models import MiniSegformer, ModelConfig
from repro.nn.training import prepare_quantized_model
from repro.reliability import FaultPlan, FaultSpec, QueueFullError, inject
from repro.serve import BatchingServer

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

OPERATORS = ("exp", "gelu", "div", "rsqrt")


def build_model(model_config: ModelConfig):
    suite = PWLSuite(
        approximations={
            op: fit_pwl(
                get_function(op).fn,
                uniform_breakpoints(*get_function(op).search_range, 8),
                get_function(op).search_range,
            ).to_fixed_point(5)
            for op in OPERATORS
        },
        replace=set(OPERATORS),
        engine="dense",
    )
    model = MiniSegformer(model_config, suite=suite)
    prepare_quantized_model(model)
    model.eval()
    return model


def make_images(model_config: ModelConfig, count: int, seed: int):
    rng = np.random.default_rng(seed)
    size = model_config.image_size
    return [rng.normal(size=(size, size, 3)) for _ in range(count)]


def _percentiles_seconds(samples):
    if not samples:
        return {"p50_seconds": 0.0, "p95_seconds": 0.0, "p99_seconds": 0.0}
    p50, p95, p99 = np.percentile(np.asarray(samples, dtype=np.float64),
                                  (50.0, 95.0, 99.0))
    return {
        "p50_seconds": float(p50),
        "p95_seconds": float(p95),
        "p99_seconds": float(p99),
    }


def run_level(server: BatchingServer, images, offered_rps: float,
              duration_seconds: float) -> dict:
    """Open-loop paced submission at ``offered_rps`` for one level.

    Latency is client-observed (submit to future resolution, recorded by
    a done-callback so the pacing loop never blocks on results).
    """
    interval = 1.0 / offered_rps
    latencies: list = []  # list.append is atomic; callbacks run in the worker
    shed = 0
    offered = 0
    futures = []
    start = time.perf_counter()
    next_submit = start
    while True:
        now = time.perf_counter()
        if now - start >= duration_seconds:
            break
        if now < next_submit:
            time.sleep(next_submit - now)
        submitted_at = time.perf_counter()
        try:
            future = server.submit(images[offered % len(images)])
        except QueueFullError:
            shed += 1
        else:
            future.add_done_callback(
                lambda f, t0=submitted_at: latencies.append(time.perf_counter() - t0)
            )
            futures.append(future)
        offered += 1
        next_submit += interval
    for future in futures:
        future.result(timeout=60.0)
    elapsed = time.perf_counter() - start
    completed = len(futures)
    return {
        "offered_rps": offered_rps,
        "offered": offered,
        "completed": completed,
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "achieved_rps": completed / elapsed,
        **_percentiles_seconds(latencies),
    }


def bench_load(model, model_config, start_rps: float, duration_seconds: float,
               max_levels: int, max_batch: int) -> dict:
    """Double the offered rate until the server saturates."""
    images = make_images(model_config, 32, seed=1)
    reference = [model.predict(image[None], engine="eager")[0] for image in images]

    with BatchingServer(model, max_batch=max_batch, max_wait_ms=2.0,
                        engine="compiled", max_queue=512) as server:
        # Correctness first, at zero contention: every served response is
        # bit-identical to the eager reference.
        served = server.predict_many(images, timeout=60.0)
        identical = all(np.array_equal(a, b) for a, b in zip(served, reference))

        levels = []
        offered = start_rps
        saturation_rps = None
        for _ in range(max_levels):
            level = run_level(server, images, offered, duration_seconds)
            levels.append(level)
            saturated = (
                level["shed_rate"] > 0.0
                or level["achieved_rps"] < 0.8 * level["offered_rps"]
            )
            if saturated:
                saturation_rps = level["offered_rps"]
                break
            offered *= 2.0
    return {
        "identical_results": bool(identical),
        "levels": levels,
        "saturation_rps": saturation_rps,
        "saturated": saturation_rps is not None,
    }


def bench_shedding(model, model_config, burst: int, queue_limit: int) -> dict:
    """Unpaced burst against a tiny queue: depth bounded, overflow shed."""
    images = make_images(model_config, 16, seed=2)
    max_depth = 0
    shed = 0
    futures = []
    with BatchingServer(model, max_batch=4, max_wait_ms=0.0, engine="compiled",
                        max_queue=queue_limit) as server:
        for index in range(burst):
            try:
                futures.append(server.submit(images[index % len(images)]))
            except QueueFullError:
                shed += 1
            max_depth = max(max_depth, server.health()["queue_depth"])
        for future in futures:
            future.result(timeout=60.0)
        stats = server.stats()
    return {
        "burst": burst,
        "queue_limit": queue_limit,
        "admitted": len(futures),
        "completed": stats.completed,
        "shed": shed,
        "max_observed_depth": max_depth,
        "bounded": bool(max_depth <= queue_limit and stats.completed == len(futures)),
    }


def bench_degradation(model, model_config, requests: int) -> dict:
    """Injected trace failure: eager fallback must stay bit-identical."""
    images = make_images(model_config, requests, seed=3)
    reference = [model.predict(image[None], engine="eager")[0] for image in images]
    plan = FaultPlan(specs=(FaultSpec(site="compiled.trace", fail_always=True),))
    with inject(plan):
        with BatchingServer(model, max_batch=4, max_wait_ms=2.0,
                            engine="compiled") as server:
            served = server.predict_many(images, timeout=60.0)
            stats = server.stats()
            status = server.health()["status"]
    identical = all(np.array_equal(a, b) for a, b in zip(served, reference))
    return {
        "requests": requests,
        "identical_results": bool(identical),
        "fallback_count": stats.fallbacks,
        "health_status": status,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--start-rps", type=float, default=None,
                        help="offered RPS of the first load level")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per load level")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced budget: tiny model, short levels")
    args = parser.parse_args(argv)

    if args.smoke:
        model_config = ModelConfig(image_size=16, embed_dim=16, depth=1)
        start_rps = args.start_rps or 50.0
        duration = args.duration or 0.5
        max_levels, max_batch = 4, 8
        burst, queue_limit = 64, 8
        degradation_requests = 8
    else:
        model_config = ModelConfig()
        start_rps = args.start_rps or 25.0
        duration = args.duration or 2.0
        max_levels, max_batch = 8, 16
        burst, queue_limit = 256, 16
        degradation_requests = 24

    model = build_model(model_config)
    # One eager call initialises the LSQ quantizers so every path (eager
    # reference, compiled serving, fallback) sees identical frozen scales.
    model.predict(np.random.default_rng(0).normal(
        size=(1, model_config.image_size, model_config.image_size, 3)))

    report = {
        "benchmark": "serving",
        "config": {
            "image_size": model_config.image_size,
            "embed_dim": model_config.embed_dim,
            "depth": model_config.depth,
            "start_rps": start_rps,
            "duration_seconds": duration,
            "max_batch": max_batch,
            "burst": burst,
            "queue_limit": queue_limit,
            "smoke": bool(args.smoke),
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }

    load = bench_load(model, model_config, start_rps, duration, max_levels, max_batch)
    report["load"] = load
    for level in load["levels"]:
        print(
            "load %8.1f rps offered   %8.1f achieved   p50 %6.1fms  p99 %6.1fms"
            "   shed %5.1f%%"
            % (level["offered_rps"], level["achieved_rps"],
               1e3 * level["p50_seconds"], 1e3 * level["p99_seconds"],
               100.0 * level["shed_rate"])
        )
    print("saturation: %s   low-rate bit-parity: %s"
          % (load["saturation_rps"], load["identical_results"]))

    # The uncontended level is the latency claim parity gates on.
    lowest = load["levels"][0]
    report["latency"] = {
        "p50_seconds": lowest["p50_seconds"],
        "p95_seconds": lowest["p95_seconds"],
        "p99_seconds": lowest["p99_seconds"],
    }

    shedding = bench_shedding(model, model_config, burst, queue_limit)
    report["shedding"] = shedding
    print("shedding: %d/%d shed at queue_limit=%d (max depth %d, bounded=%s)"
          % (shedding["shed"], shedding["burst"], shedding["queue_limit"],
             shedding["max_observed_depth"], shedding["bounded"]))

    degradation = bench_degradation(model, model_config, degradation_requests)
    report["degradation"] = degradation
    print("degradation: %d requests via eager fallback (%d fallbacks, "
          "identical=%s, status=%s)"
          % (degradation["requests"], degradation["fallback_count"],
             degradation["identical_results"], degradation["health_status"]))

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print("wrote %s" % args.output)

    failures = []
    if not load["identical_results"]:
        failures.append("served responses diverged from eager at low rate")
    if not shedding["bounded"]:
        failures.append("admission queue was not bounded under overload")
    if not degradation["identical_results"]:
        failures.append("eager fallback diverged from the eager reference")
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
